"""Project call-graph construction with a measured resolution rate.

Python call sites cannot all be resolved statically; what matters for
the flow passes is (a) resolving the large disciplined majority this
codebase actually contains, and (b) *measuring* the rest, so the
passes' blind spots are a number CI can pin instead of silent decay.

Classification of every call site:

- **project** — resolved to a :class:`~repro.analysis.flow.project.FunctionInfo`
  (direct call, from-import, module alias, ``self``/``cls`` method with
  inheritance, typed receiver via ``self.attr = Klass(...)`` or an
  annotated parameter, class construction → ``__init__``, or a method
  name defined by exactly one project class);
- **external** — provably not project code: builtins, attributes of
  imported non-project modules, and method names no project class
  defines (``queue.get``, ``array.sum``);
- **unresolved** — could be project code but cannot be pinned down: a
  computed callable, a call through a local rebinding, or a method name
  several project classes define on an untyped receiver.

``rate = resolved / (resolved + unresolved)`` — external calls are
excluded from the denominator because no resolver could, or should,
chase them.  ``repro lint --flow`` reports the rate and ``--strict``
fails when it drops below the pinned floor
(:data:`repro.analysis.flow.RESOLUTION_FLOOR`).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Optional

from repro.analysis.flow.project import (
    BUILTIN_NAMES,
    ClassInfo,
    FunctionInfo,
    _dotted,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.flow.project import Project


@dataclass(frozen=True)
class Resolution:
    """Outcome of resolving one call site."""

    kind: str  # "project" | "external" | "unresolved"
    target: Optional[FunctionInfo] = None
    #: Construction of a project class with no reachable ``__init__``
    #: still resolves; the class is recorded here for exception flow.
    klass: Optional[ClassInfo] = None


@dataclass(frozen=True)
class CallEdge:
    """One resolved caller→callee edge, anchored to its call site."""

    caller: str
    callee: str
    lineno: int
    call: ast.Call


class CallGraph:
    """Resolved call edges over a project, plus resolution accounting."""

    def __init__(self, project: "Project") -> None:
        self.project = project
        self.edges: dict[str, list[CallEdge]] = {}
        self.reverse: dict[str, set[str]] = {}
        self.resolved = 0
        self.unresolved = 0
        self.external = 0
        self._local_types_cache: dict[str, dict[str, ClassInfo]] = {}
        for func in project.functions.values():
            self._build_function(func)

    # -- construction --------------------------------------------------

    def _build_function(self, func: FunctionInfo) -> None:
        for node in func.body_nodes():
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                nested = f"{func.qualname}.<locals>.{node.name}"
                if nested in self.project.functions:
                    # Defining a closure implies it may run: one edge,
                    # outside the resolution accounting.
                    self._add_edge(func.qualname, nested, node.lineno, None)
                continue
            if isinstance(node, ast.Call):
                resolution = self.resolve_call(func, node)
                if resolution.kind == "project":
                    self.resolved += 1
                    if resolution.target is not None:
                        self._add_edge(
                            func.qualname,
                            resolution.target.qualname,
                            node.lineno,
                            node,
                        )
                elif resolution.kind == "external":
                    self.external += 1
                else:
                    self.unresolved += 1

    def _add_edge(
        self,
        caller: str,
        callee: str,
        lineno: int,
        call: "ast.Call | None",
    ) -> None:
        edge = CallEdge(
            caller=caller,
            callee=callee,
            lineno=lineno,
            call=call if call is not None else ast.Call(ast.Name(""), [], []),
        )
        self.edges.setdefault(caller, []).append(edge)
        self.reverse.setdefault(callee, set()).add(caller)

    # -- resolution ----------------------------------------------------

    def local_types(self, func: FunctionInfo) -> "dict[str, ClassInfo]":
        """name -> project class, from annotations and constructor assigns."""
        cached = self._local_types_cache.get(func.qualname)
        if cached is not None:
            return cached
        types: dict[str, ClassInfo] = {}
        for param, annotation in func.annotations.items():
            klass = self.project.class_of_annotation(annotation, func.relpath)
            if klass is not None:
                types[param] = klass
        for node in func.body_nodes():
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                resolved = self.project.resolve_symbol(
                    _dotted(node.value.func), func.relpath
                )
                if isinstance(resolved, ClassInfo):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            types[target.id] = resolved
        self._local_types_cache[func.qualname] = types
        return types

    def resolve_call(self, func: FunctionInfo, call: ast.Call) -> Resolution:
        """Classify one call site inside ``func`` (see module docstring)."""
        target = call.func
        if isinstance(target, ast.Name):
            return self._resolve_name_call(func, target.id)
        if isinstance(target, ast.Attribute):
            return self._resolve_attribute_call(func, target)
        return Resolution(kind="unresolved")

    def _resolve_name_call(self, func: FunctionInfo, name: str) -> Resolution:
        module = self.project.module_of(func.relpath)
        symbol = self.project.resolve_symbol(name, func.relpath)
        if isinstance(symbol, FunctionInfo):
            return Resolution(kind="project", target=symbol)
        if isinstance(symbol, ClassInfo):
            return self._resolve_construction(symbol)
        if module is not None and (
            name in module.import_symbols or name in module.import_modules
        ):
            # Imported, but from outside the project: external by fiat.
            return Resolution(kind="external")
        if name in BUILTIN_NAMES:
            return Resolution(kind="external")
        # A local rebinding, a parameter, or an unknown global: dynamic.
        return Resolution(kind="unresolved")

    def _resolve_construction(self, klass: ClassInfo) -> Resolution:
        init = self.project.resolve_method(klass, "__init__")
        return Resolution(kind="project", target=init, klass=klass)

    def _resolve_attribute_call(
        self, func: FunctionInfo, target: ast.Attribute
    ) -> Resolution:
        chain = _dotted(target)
        attr = target.attr
        if chain:
            parts = chain.split(".")
            root = parts[0]
            resolved = self._resolve_rooted(func, parts)
            if resolved is not None:
                return resolved
            module = self.project.module_of(func.relpath)
            if module is not None and root in module.import_modules:
                alias_target = module.import_modules[root]
                if alias_target not in self.project.modules and not any(
                    m.startswith(alias_target + ".") for m in self.project.modules
                ):
                    return Resolution(kind="external")
        # Fall back on the method name itself: a name no project class
        # defines cannot be project code; a unique definer resolves it;
        # several definers on an untyped receiver stay honest-unresolved.
        candidates = self.project.method_index.get(attr, [])
        if not candidates and attr not in self.project.functions:
            return Resolution(kind="external")
        if len(candidates) == 1:
            return Resolution(kind="project", target=candidates[0])
        return Resolution(kind="unresolved")

    def _resolve_rooted(
        self, func: FunctionInfo, parts: "list[str]"
    ) -> Optional[Resolution]:
        """Resolve ``root.attr...`` chains with a known receiver type."""
        root = parts[0]
        if root in ("self", "cls") and func.class_name is not None:
            module = self.project.module_of(func.relpath)
            klass = module.classes.get(func.class_name) if module else None
            if klass is None:
                return None
            if len(parts) == 2:
                method = self.project.resolve_method(klass, parts[1])
                if method is not None:
                    return Resolution(kind="project", target=method)
                return None
            if len(parts) == 3 and parts[1] in klass.attr_types:
                attr_klass = self.project.classes.get(klass.attr_types[parts[1]])
                if attr_klass is not None:
                    method = self.project.resolve_method(attr_klass, parts[2])
                    if method is not None:
                        return Resolution(kind="project", target=method)
            return None
        local_types = self.local_types(func)
        if root in local_types and len(parts) == 2:
            method = self.project.resolve_method(local_types[root], parts[1])
            if method is not None:
                return Resolution(kind="project", target=method)
            return None
        symbol = self.project.resolve_symbol(".".join(parts), func.relpath)
        if isinstance(symbol, FunctionInfo):
            return Resolution(kind="project", target=symbol)
        if isinstance(symbol, ClassInfo):
            return self._resolve_construction(symbol)
        return None

    # -- queries -------------------------------------------------------

    def callees(self, qualname: str) -> Iterator[CallEdge]:
        """Outgoing resolved edges of one function."""
        yield from self.edges.get(qualname, ())

    def callers(self, qualname: str) -> "set[str]":
        """Qualnames of every resolved caller of one function."""
        return self.reverse.get(qualname, set())

    def reachable(
        self, starts: "set[str]", *, forward: bool = True
    ) -> "set[str]":
        """Every function reachable from ``starts`` along resolved edges."""
        seen = set(starts)
        frontier = list(starts)
        while frontier:
            current = frontier.pop()
            if forward:
                nexts = [edge.callee for edge in self.edges.get(current, ())]
            else:
                nexts = list(self.reverse.get(current, ()))
            for nxt in nexts:
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return seen

    def sample_path(
        self, start: str, goal: str
    ) -> "list[str]":
        """One shortest resolved path start→goal (empty when none)."""
        if start == goal:
            return [start]
        parents: dict[str, str] = {start: start}
        frontier = [start]
        while frontier:
            nxt_frontier: list[str] = []
            for current in frontier:
                for edge in self.edges.get(current, ()):
                    if edge.callee in parents:
                        continue
                    parents[edge.callee] = current
                    if edge.callee == goal:
                        path = [goal]
                        while path[-1] != start:
                            path.append(parents[path[-1]])
                        return list(reversed(path))
                    nxt_frontier.append(edge.callee)
            frontier = nxt_frontier
        return []

    def stats(self) -> "dict[str, object]":
        """Resolution accounting for reports and the self-check floor."""
        considered = self.resolved + self.unresolved
        rate = (self.resolved / considered) if considered else 1.0
        return {
            "calls": considered + self.external,
            "resolved": self.resolved,
            "unresolved": self.unresolved,
            "external": self.external,
            "rate": round(rate, 4),
        }
