"""Small AST helpers shared by the flow passes."""

from __future__ import annotations

import ast
from typing import Iterator, Optional


def parent_map(root: ast.AST) -> "dict[int, ast.AST]":
    """``id(child) -> parent`` for every node under ``root``."""
    parents: dict[int, ast.AST] = {}
    for node in ast.walk(root):
        for child in ast.iter_child_nodes(node):
            parents[id(child)] = node
    return parents


def ancestors(
    node: ast.AST, parents: "dict[int, ast.AST]"
) -> Iterator[ast.AST]:
    """The parent chain of ``node``, nearest first."""
    current = parents.get(id(node))
    while current is not None:
        yield current
        current = parents.get(id(current))


def enclosing_statement(
    node: ast.AST, parents: "dict[int, ast.AST]"
) -> Optional[ast.stmt]:
    """The innermost statement containing ``node`` (itself, if one)."""
    if isinstance(node, ast.stmt):
        return node
    for ancestor in ancestors(node, parents):
        if isinstance(ancestor, ast.stmt):
            return ancestor
    return None


def names_in(node: ast.AST) -> "set[str]":
    """Every ``Name`` loaded or stored anywhere inside ``node``."""
    return {
        inner.id for inner in ast.walk(node) if isinstance(inner, ast.Name)
    }


def try_field_of(
    node: ast.AST, parents: "dict[int, ast.AST]"
) -> "list[tuple[ast.Try, str]]":
    """Each enclosing ``Try`` with the region holding ``node``.

    The region is one of ``"body"``, ``"handler"``, ``"orelse"``,
    ``"final"`` — resolved by walking up and remembering which child we
    came from.  Nearest try first.
    """
    result: "list[tuple[ast.Try, str]]" = []
    child = node
    for ancestor in ancestors(node, parents):
        if isinstance(ancestor, ast.Try):
            if any(_contains(stmt, child) for stmt in ancestor.finalbody):
                result.append((ancestor, "final"))
            elif any(
                _contains(handler, child) for handler in ancestor.handlers
            ):
                result.append((ancestor, "handler"))
            elif any(_contains(stmt, child) for stmt in ancestor.orelse):
                result.append((ancestor, "orelse"))
            else:
                result.append((ancestor, "body"))
        child = ancestor
    return result


def _contains(root: ast.AST, node: ast.AST) -> bool:
    if root is node:
        return True
    return any(child is node for child in ast.walk(root))
