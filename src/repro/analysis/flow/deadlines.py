"""Interprocedural pass: deadlines must survive the whole call path.

A deadline that stops being forwarded one frame above a sleep is not a
deadline — the query keeps its end-to-end budget only if every function
between :meth:`ServingIndex.query` and the actual wait either receives
the :class:`~repro.resilience.deadline.Deadline` or derives one.  The
line-local ``deadline-discipline`` rule sees single functions; this
pass walks the resolved call graph and reports two stronger facts:

- **dropped at a boundary** — a function that *has* a deadline in
  scope calls a resolved project function that *accepts* one, without
  passing it.  The budget silently resets to infinity right there.
- **hole on the query path** — a function that lies on a resolved path
  from the serving entry points to a timed wait (a ``sleep`` or a
  ``timeout=`` poll) but neither accepts a deadline parameter nor
  constructs its own.  Even if today's callers behave, nothing *can*
  thread the budget through this frame.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from repro.analysis.engine import Finding, ModuleContext, Rule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.flow.project import FunctionInfo, Project

#: Parameter names that carry the budget across a call boundary.
DEADLINE_PARAMS = frozenset({"deadline", "deadline_ms"})

#: Callables whose result is a fresh Deadline (constructors/derivers).
DEADLINE_SOURCES = frozenset({"Deadline", "after_ms", "deadline_for", "clamp"})

#: The serving entry points whose budget must reach every wait.
ENTRY_QUALNAMES = (
    "repro.serve.index.ServingIndex.query",
    "repro.serve.index.ServingIndex.query_batch",
)


def _accepts_deadline(func: "FunctionInfo") -> bool:
    return bool(DEADLINE_PARAMS & set(func.params))


def _mentions_deadline(node: ast.AST) -> bool:
    """Whether any name/attribute in ``node`` looks deadline-bearing."""
    for inner in ast.walk(node):
        if isinstance(inner, ast.Name) and "deadline" in inner.id.lower():
            return True
        if isinstance(inner, ast.Attribute) and (
            "deadline" in inner.attr.lower()
        ):
            return True
    return False


def _constructs_deadline(func: "FunctionInfo") -> bool:
    """Whether the function derives its own Deadline internally."""
    for node in func.body_nodes():
        if isinstance(node, ast.Call):
            target = node.func
            name = (
                target.attr
                if isinstance(target, ast.Attribute)
                else target.id if isinstance(target, ast.Name) else ""
            )
            if name in DEADLINE_SOURCES:
                return True
    return False


def _deadline_in_scope(func: "FunctionInfo") -> bool:
    return _accepts_deadline(func) or _constructs_deadline(func)


def _is_timed_wait(node: ast.Call) -> bool:
    target = node.func
    name = (
        target.attr
        if isinstance(target, ast.Attribute)
        else target.id if isinstance(target, ast.Name) else ""
    )
    if name == "sleep":
        return True
    # ``join``/``terminate`` teardown waits are deliberately excluded:
    # pool repair must finish regardless of the query budget, and its
    # bounds are fixed constants, not deadline-clamped.
    return name in ("wait", "poll", "acquire", "get") and any(
        kw.arg == "timeout" for kw in node.keywords
    )


class DeadlinePropagationRule(Rule):
    """The query deadline must be forwarded to every timed wait."""

    id = "flow-deadline-propagation"
    summary = (
        "the Deadline is dropped before it reaches a timed wait on the "
        "serving path"
    )
    hint = (
        "accept a deadline parameter and forward it (or derive a "
        "clamped child deadline) at every frame between query() and "
        "the sleep/poll"
    )
    paths = ("serve/", "parallel/", "resilience/", "store/", "core/")
    needs_project = True

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Yield deadline-drop findings for functions defined in ``ctx``."""
        project = self.project
        if project is None:  # pragma: no cover - engine guarantees it
            return
        on_path = self._query_path_functions(project)
        for qualname, func in project.functions.items():
            if func.relpath != ctx.relpath:
                continue
            yield from self._check_boundaries(ctx, project, func)
            if qualname in on_path:
                yield from self._check_path_hole(ctx, project, func)

    # -- check A: dropped at a call boundary ---------------------------

    def _check_boundaries(
        self, ctx: ModuleContext, project: "Project", func: "FunctionInfo"
    ) -> Iterator[Finding]:
        if not _deadline_in_scope(func):
            return
        for edge in project.callgraph.callees(func.qualname):
            callee = project.functions.get(edge.callee)
            if callee is None or not _accepts_deadline(callee):
                continue
            if callee.name in DEADLINE_SOURCES:
                continue
            call = edge.call
            if not isinstance(call.func, (ast.Name, ast.Attribute)):
                continue
            operands = [*call.args, *[kw.value for kw in call.keywords]]
            forwarded = any(
                kw.arg in DEADLINE_PARAMS for kw in call.keywords if kw.arg
            ) or any(_mentions_deadline(op) for op in operands)
            if forwarded:
                continue
            yield self.finding(
                ctx,
                call,
                f"{func.name}() has a deadline in scope but calls "
                f"{callee.name}() without forwarding it; the budget "
                "resets at this boundary",
            )

    # -- check B: a hole on the query->wait path -----------------------

    def _query_path_functions(self, project: "Project") -> "set[str]":
        cached = getattr(project, "_deadline_path_funcs", None)
        if cached is not None:
            return cached
        graph = project.callgraph
        entries = {q for q in ENTRY_QUALNAMES if q in project.functions}
        sinks = {
            qualname
            for qualname, func in project.functions.items()
            if any(
                isinstance(node, ast.Call) and _is_timed_wait(node)
                for node in func.body_nodes()
            )
        }
        if not entries or not sinks:
            project._deadline_path_funcs = set()  # type: ignore[attr-defined]
            return set()
        from_entries = graph.reachable(entries, forward=True)
        to_sinks = graph.reachable(sinks, forward=False)
        on_path = (from_entries & to_sinks) - entries
        project._deadline_path_funcs = on_path  # type: ignore[attr-defined]
        return on_path

    def _check_path_hole(
        self, ctx: ModuleContext, project: "Project", func: "FunctionInfo"
    ) -> Iterator[Finding]:
        if func.name == "__init__" or "<locals>" in func.qualname:
            return
        if _deadline_in_scope(func) or func.has_kwargs:
            return
        entry = next(
            (
                q
                for q in ENTRY_QUALNAMES
                if q in project.functions
                and func.qualname
                in project.callgraph.reachable({q}, forward=True)
            ),
            None,
        )
        via = ""
        if entry is not None:
            chain = project.callgraph.sample_path(entry, func.qualname)
            if chain:
                via = " (" + " -> ".join(
                    part.rsplit(".", 1)[-1] + "()" for part in chain
                ) + ")"
        yield self.finding(
            ctx,
            func.node.lineno,
            f"{func.name}() lies between the serving entry points and a "
            f"timed wait but cannot carry the deadline{via}",
        )
