"""Interprocedural pass: what can escape the public API, typed or not.

The error contract (see ``repro.errors``) is that ``core``, ``serve``
and ``store`` surface only :class:`~repro.errors.ReproError` subclasses
plus a short list of conventional builtins (``ValueError`` for bad
arguments, ``KeyError``/``IndexError`` for lookups, ``OSError`` for the
filesystem edge).  The line-local ``typed-errors`` rule bans *raising*
``RuntimeError`` at the raise site; this pass closes the interprocedural
gap — a helper three calls deep raising ``RuntimeError`` that no caller
catches is the same contract violation, invisible to any line rule.

Per function we compute the **escape set**: exception names raised
locally or propagated from resolved callees, minus whatever enclosing
``try`` handlers absorb.  Handler semantics are deliberately
conservative:

- a handler catching ``T`` absorbs exactly the names that are ``T`` or
  a subclass of ``T`` (builtin MRO plus the project class hierarchy);
- a handler whose body re-raises the caught exception (bare ``raise``,
  or ``raise e`` where ``e`` is the handler alias) is *transparent* —
  it absorbs nothing;
- ``raise New(...) from e`` inside a handler absorbs the caught set and
  contributes ``New`` (the translation idiom the contract asks for).

The fixpoint runs over the resolved call graph only; unresolved and
external calls contribute nothing, which is exactly the blind spot the
measured resolution rate quantifies.
"""

from __future__ import annotations

import ast
import builtins
from typing import TYPE_CHECKING, Iterator, Optional

from repro.analysis.engine import Finding, ModuleContext, Rule
from repro.analysis.flow.astutil import parent_map, try_field_of

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.flow.project import FunctionInfo, Project

#: Builtins the public API may let escape without translation.
ALLOWED_BUILTINS = frozenset(
    {
        "ValueError",
        "TypeError",
        "KeyError",
        "IndexError",
        "LookupError",
        "AttributeError",
        "OSError",
        "FileNotFoundError",
        "FileExistsError",
        "PermissionError",
        "IsADirectoryError",
        "NotADirectoryError",
        "NotImplementedError",
        "StopIteration",
        "StopAsyncIteration",
        "AssertionError",
        "KeyboardInterrupt",
        "SystemExit",
        "GeneratorExit",
        "MemoryError",
    }
)


def _builtin_mro_names() -> "dict[str, frozenset[str]]":
    table: dict[str, frozenset[str]] = {}
    for name in dir(builtins):
        obj = getattr(builtins, name)
        if isinstance(obj, type) and issubclass(obj, BaseException):
            table[name] = frozenset(
                klass.__name__
                for klass in obj.__mro__
                if isinstance(klass, type)
                and issubclass(klass, BaseException)
            )
    return table


#: Exception class name -> its ancestor names (self included).
BUILTIN_EXCEPTION_MRO = _builtin_mro_names()


class ExceptionHierarchy:
    """Subclass queries over builtins plus the project's own classes."""

    def __init__(self, project: "Project") -> None:
        self.project = project
        self._cache: dict[str, frozenset[str]] = {}

    def ancestors(self, name: str) -> "frozenset[str]":
        """Every ancestor class name of ``name``, itself included."""
        cached = self._cache.get(name)
        if cached is not None:
            return cached
        self._cache[name] = frozenset({name})  # cycle guard
        result = {name}
        for klass in self.project.classes.values():
            if klass.name != name:
                continue
            for base_name in klass.base_names:
                terminal = base_name.rsplit(".", 1)[-1]
                result.update(self.ancestors(terminal))
        if name in BUILTIN_EXCEPTION_MRO:
            result.update(BUILTIN_EXCEPTION_MRO[name])
        frozen = frozenset(result)
        self._cache[name] = frozen
        return frozen

    def catches(self, catch_name: str, exc_name: str) -> bool:
        """Whether ``except catch_name`` absorbs an ``exc_name``."""
        return catch_name in self.ancestors(exc_name)


def _handler_catch_names(handler: ast.ExceptHandler) -> "list[str] | None":
    """Names an ``except`` clause catches; ``None`` means catch-all."""
    if handler.type is None:
        return None
    names: list[str] = []
    types = (
        handler.type.elts
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    for node in types:
        if isinstance(node, ast.Attribute):
            names.append(node.attr)
        elif isinstance(node, ast.Name):
            names.append(node.id)
        else:
            return None  # computed type: assume catch-all, stay quiet
    return names


def _handler_is_transparent(handler: ast.ExceptHandler) -> bool:
    """Whether the handler re-raises what it caught."""
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            if node.exc is None:
                return True
            if (
                isinstance(node.exc, ast.Name)
                and handler.name is not None
                and node.exc.id == handler.name
                and node.cause is None
            ):
                return True
    return False


def _raised_name(node: ast.Raise) -> Optional[str]:
    """The class name a ``raise`` statement raises, when it names one."""
    exc = node.exc
    if isinstance(exc, ast.Call):
        exc = exc.func
    if isinstance(exc, ast.Attribute):
        return exc.attr
    if isinstance(exc, ast.Name):
        # ``raise SomeError`` without a call still names the class when
        # the name looks like one; ``raise err`` re-raises a value we
        # cannot track and is handled by handler transparency instead.
        return exc.id if exc.id[:1].isupper() else None
    return None


class EscapeAnalysis:
    """Fixpoint escape sets for every project function, cached on it."""

    def __init__(self, project: "Project") -> None:
        self.project = project
        self.hierarchy = ExceptionHierarchy(project)
        self._parents: dict[str, dict[int, ast.AST]] = {}
        #: qualname -> escaping exception names.
        self.escapes: dict[str, set[str]] = {}
        #: (qualname, exc name) -> anchor line for the report.
        self.origins: dict[tuple[str, str], int] = {}
        self._run()

    @classmethod
    def of(cls, project: "Project") -> "EscapeAnalysis":
        cached = getattr(project, "_escape_analysis", None)
        if cached is None:
            cached = cls(project)
            project._escape_analysis = cached  # type: ignore[attr-defined]
        return cached

    # -- fixpoint ------------------------------------------------------

    def _run(self) -> None:
        local: dict[str, set[str]] = {}
        for qualname, func in self.project.functions.items():
            raised = set()
            for node in func.body_nodes():
                if not isinstance(node, ast.Raise):
                    continue
                name = _raised_name(node)
                if name is None:
                    continue
                survivors = self._filter(func, node, {name})
                for excname in survivors:
                    self.origins.setdefault((qualname, excname), node.lineno)
                raised |= survivors
            local[qualname] = raised
        self.escapes = {q: set(s) for q, s in local.items()}
        changed = True
        while changed:
            changed = False
            for qualname, func in self.project.functions.items():
                current = self.escapes[qualname]
                for edge in self.project.callgraph.callees(qualname):
                    incoming = self.escapes.get(edge.callee)
                    if not incoming:
                        continue
                    survivors = self._filter(func, edge.call, set(incoming))
                    for excname in survivors:
                        if excname not in current:
                            current.add(excname)
                            self.origins.setdefault(
                                (qualname, excname), edge.lineno
                            )
                            changed = True

    def _filter(
        self, func: "FunctionInfo", node: ast.AST, names: "set[str]"
    ) -> "set[str]":
        """Remove names absorbed by ``try`` blocks around ``node``."""
        if not names:
            return names
        parents = self._parents.get(func.qualname)
        if parents is None:
            parents = parent_map(func.node)
            self._parents[func.qualname] = parents
        survivors = set(names)
        for try_stmt, region in try_field_of(node, parents):
            if region not in ("body", "orelse"):
                continue
            if region == "orelse":
                # ``else`` runs after the body succeeded; its exceptions
                # bypass this try's handlers.
                continue
            for handler in try_stmt.handlers:
                if _handler_is_transparent(handler):
                    continue
                catch_names = _handler_catch_names(handler)
                if catch_names is None:
                    return set()
                survivors = {
                    name
                    for name in survivors
                    if not any(
                        self.hierarchy.catches(catch, name)
                        for catch in catch_names
                    )
                }
                if not survivors:
                    return survivors
        return survivors

    # -- reporting helpers ---------------------------------------------

    def trace(self, qualname: str, excname: str) -> "list[str]":
        """A call chain from ``qualname`` to a function raising ``excname``."""
        path = [qualname]
        seen = {qualname}
        current = qualname
        while True:
            func = self.project.functions.get(current)
            if func is not None and any(
                _raised_name(node) == excname
                for node in func.body_nodes()
                if isinstance(node, ast.Raise)
            ):
                return path
            advanced = False
            for edge in self.project.callgraph.callees(current):
                if edge.callee in seen:
                    continue
                if excname in self.escapes.get(edge.callee, ()):
                    path.append(edge.callee)
                    seen.add(edge.callee)
                    current = edge.callee
                    advanced = True
                    break
            if not advanced:
                return path


class ExceptionEscapeRule(Rule):
    """Public core/serve/store APIs must surface typed errors only."""

    id = "flow-exception-escape"
    summary = (
        "an untyped exception can escape a public API function; the "
        "contract allows repro.errors types and conventional builtins"
    )
    hint = (
        "translate at the boundary: except the raw error and raise the "
        "matching repro.errors type from it"
    )
    paths = ("core/", "serve/", "store/")
    needs_project = True

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Yield untyped-escape findings for public APIs in ``ctx``."""
        project = self.project
        if project is None:  # pragma: no cover - engine guarantees it
            return
        analysis = EscapeAnalysis.of(project)
        allowed = project.repro_error_names() | ALLOWED_BUILTINS
        for qualname, func in project.functions.items():
            if func.relpath != ctx.relpath or not func.is_public:
                continue
            if func.name == "__init__" and func.class_name is not None:
                klass = project.classes.get(
                    qualname.rsplit(".", 1)[0]
                )
                if klass is not None and any(
                    base.rsplit(".", 1)[-1] in BUILTIN_EXCEPTION_MRO
                    or base.rsplit(".", 1)[-1] in allowed
                    for base in klass.base_names
                ):
                    # Exception-class constructors raise themselves by
                    # design; the contract governs API functions.
                    continue
            for excname in sorted(analysis.escapes.get(qualname, ())):
                if excname in allowed:
                    continue
                anchor = analysis.origins.get(
                    (qualname, excname), func.node.lineno
                )
                chain = analysis.trace(qualname, excname)
                via = ""
                if len(chain) > 1:
                    via = " via " + " -> ".join(
                        part.rsplit(".", 1)[-1] + "()" for part in chain
                    )
                yield self.finding(
                    ctx,
                    anchor,
                    f"{excname} can escape public {func.name}(){via}; "
                    "it is neither a repro.errors type nor an allowed "
                    "builtin",
                )
