"""The static-analysis rule engine: walking, dispatch, suppression.

Design
------
A :class:`Rule` sees one :class:`ModuleContext` at a time — the parsed
AST plus the raw source, the project-relative path, and the parsed
suppression comments — and yields :class:`Finding` objects.  The engine
owns everything rule authors should not have to re-implement:

- **walking** (:func:`lint_paths`): expand files/directories into the
  ``.py`` modules to check, compute each module's path relative to the
  ``repro`` package so rules can scope themselves to ``core/`` or
  ``serve/``,
- **dispatch**: run every applicable rule over every module, in a
  deterministic order (paths sorted, rules in registration order),
- **suppression**: drop findings whose line carries a
  ``# repro: noqa[rule-id] -- reason`` comment for that rule id.  A
  suppression *requires* the reason string — a silenced check with no
  recorded justification is itself reported (rule id ``suppression``),
  and that report cannot be suppressed,
- **robust failure**: a module that does not parse produces a single
  ``parse-error`` finding instead of crashing the run.

Suppression syntax
------------------
::

    risky_line()  # repro: noqa[typed-errors] -- fault injection must catch everything
    other_line()  # repro: noqa[determinism, guard-coverage] -- reason here

The comment silences only the listed rule ids, anywhere within the
*statement* its line belongs to: a comment on a decorated function's
``def`` line also covers the decorator lines, and a comment on any
physical line of a multi-line call covers the whole call.  Lines that
belong to no statement (an ``except`` header, an ``else:``) match
exactly as before.  ``[*]`` is deliberately not supported: every
suppression names what it hides.

Whole-program (flow) mode
-------------------------
Rules that set ``needs_project = True`` receive a
:class:`repro.analysis.flow.project.Project` (every module parsed once,
plus the resolved call graph) via :meth:`Rule.set_project` before
dispatch; :func:`lint_tree` builds it when ``flow=True``.  Line rules
that merely *benefit* from the call graph check ``self.project`` and
degrade gracefully to their line-local behaviour when it is ``None``.
"""

from __future__ import annotations

import ast
import dataclasses
import io
import json
import re
import tokenize
from pathlib import Path
from typing import Iterable, Iterator, Sequence

#: ``# repro: noqa[rule-a, rule-b] -- reason`` (reason optional at parse
#: time; its absence is reported as a ``suppression`` finding).
NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa\[(?P<rules>[^\]]*)\]\s*(?:--\s*(?P<reason>\S.*))?"
)

#: Rule id for a malformed / unjustified suppression comment.
SUPPRESSION_RULE = "suppression"

#: Rule id reported when a module cannot be parsed at all.
PARSE_ERROR_RULE = "parse-error"


@dataclasses.dataclass(frozen=True, order=True)
class Finding:
    """One rule violation, anchored to a file and line.

    Orders by ``(path, line, col, rule)`` so reports are deterministic
    regardless of rule execution order.  ``relpath`` is the
    package-relative path (when known) — it is what baseline
    fingerprints use, so a committed baseline stays valid across
    machines and checkouts.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    hint: str = ""
    relpath: str = ""

    def format(self) -> str:
        """Render as ``path:line:col: [rule] message (hint: ...)``."""
        text = f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"
        if self.hint:
            text = f"{text} (hint: {self.hint})"
        return text

    def as_dict(self) -> dict[str, object]:
        """JSON-ready representation (used by ``repro lint --format json``)."""
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class Suppression:
    """A parsed ``# repro: noqa[...]`` comment on one physical line."""

    line: int
    rules: tuple[str, ...]
    reason: str | None


class ModuleContext:
    """Everything a rule may inspect about one module.

    Attributes
    ----------
    path:
        Filesystem path of the module (as given to the engine).
    relpath:
        POSIX path relative to the ``repro`` package root (e.g.
        ``core/layers.py``); rules scope themselves against this.
    source:
        Raw module text.
    tree:
        The parsed :class:`ast.Module`.
    suppressions:
        ``line -> Suppression`` for every ``# repro: noqa[...]`` comment.
    """

    def __init__(self, path: str, relpath: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.relpath = relpath
        self.source = source
        self.tree = tree
        self.lines = source.splitlines()
        self.suppressions = parse_suppressions(source)
        self.spans = _statement_spans(tree)

    def suppressed(self, line: int, rule: str) -> bool:
        """True when ``rule`` is silenced on ``line``'s statement.

        A suppression comment covers every physical line of the
        (innermost) statement it sits on — decorators and the ``def``
        header of a decorated function are one statement, as are all
        lines of a multi-line call.  Lines outside any statement span
        (an ``except`` header, an ``else:``) match exactly.
        """
        if self._suppressed_on(line, rule):
            return True
        return any(
            self._suppressed_on(span_line, rule)
            for span_line in self.spans.get(line, ())
            if span_line != line
        )

    def _suppressed_on(self, line: int, rule: str) -> bool:
        noqa = self.suppressions.get(line)
        return noqa is not None and rule in noqa.rules


def _statement_spans(tree: ast.Module) -> "dict[int, frozenset[int]]":
    """Map each physical line to its (innermost) statement's line span.

    For a function/class definition the span is the *header* — the
    decorator lines through the signature, stopping before the body —
    so a suppression on the ``def`` line covers a finding anchored to a
    decorator line without silencing the entire body.  For any other
    statement the span is ``lineno..end_lineno``.  ``ast.walk`` visits
    outer statements before the statements nested inside them, so the
    innermost statement wins each line.
    """
    spans: dict[int, frozenset[int]] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt):
            continue
        start = node.lineno
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            for decorator in node.decorator_list:
                start = min(start, decorator.lineno)
            end = node.body[0].lineno - 1 if node.body else node.lineno
        else:
            end = node.end_lineno or node.lineno
        end = max(end, start)
        span = frozenset(range(start, end + 1))
        for line in span:
            spans[line] = span
    return spans


class Rule:
    """Base class for one domain rule.

    Subclasses set :attr:`id`, :attr:`summary`, :attr:`hint`, and
    optionally :attr:`paths` (relpath prefixes the rule applies to —
    empty means every module), then implement :meth:`check`.

    Whole-program rules additionally set ``needs_project = True``; the
    engine then guarantees :attr:`project` is populated (built by
    :func:`lint_tree` in flow mode, or from the single module under
    check as a fallback) before :meth:`check` runs.  Line rules may
    also inspect :attr:`project` when present to cut false positives,
    but must work with ``project is None``.
    """

    id: str = ""
    summary: str = ""
    hint: str = ""
    #: Relpath prefixes this rule scopes itself to ("" matches all).
    paths: tuple[str, ...] = ()
    #: True for interprocedural rules that cannot run without a Project.
    needs_project: bool = False
    #: The whole-program view, set by the engine in flow mode.
    project: "object | None" = None

    def set_project(self, project: "object | None") -> None:
        """Install (or clear) the whole-program view for this run."""
        self.project = project

    def applies_to(self, relpath: str) -> bool:
        """Whether this rule should run over the module at ``relpath``."""
        if not self.paths:
            return True
        return any(relpath.startswith(prefix) for prefix in self.paths)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Yield every violation of this rule in ``ctx``."""
        raise NotImplementedError

    def finding(
        self,
        ctx: ModuleContext,
        node: ast.AST | int,
        message: str,
        hint: str | None = None,
    ) -> Finding:
        """Build a :class:`Finding` anchored at ``node`` (or a line number)."""
        if isinstance(node, int):
            line, col = node, 0
        else:
            line = getattr(node, "lineno", 1)
            col = getattr(node, "col_offset", 0) + 1
        return Finding(
            path=ctx.path,
            line=line,
            col=col if not isinstance(node, int) else 0,
            rule=self.id,
            message=message,
            hint=self.hint if hint is None else hint,
            relpath=ctx.relpath,
        )


def parse_suppressions(source: str) -> dict[int, Suppression]:
    """Map physical line number -> parsed ``# repro: noqa[...]`` comment.

    Scans real COMMENT tokens (not raw text), so a suppression example
    quoted inside a docstring is never treated as live.
    """
    result: dict[int, Suppression] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return result
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = NOQA_RE.search(token.string)
        if match is None:
            continue
        lineno = token.start[0]
        rules = tuple(
            part.strip() for part in match.group("rules").split(",") if part.strip()
        )
        reason = match.group("reason")
        result[lineno] = Suppression(line=lineno, rules=rules, reason=reason)
    return result


def default_rules() -> list[Rule]:
    """The shipped line-rule set, in catalog order."""
    from repro.analysis.rules import ALL_RULES

    return [cls() for cls in ALL_RULES]


def flow_rules() -> list[Rule]:
    """The interprocedural passes behind ``repro lint --flow``."""
    from repro.analysis.flow import FLOW_RULES

    return [cls() for cls in FLOW_RULES]


def _parse_context(
    source: str, relpath: str, report_path: str
) -> "tuple[ModuleContext | None, list[Finding]]":
    """Parse one module; a syntax error becomes a ``parse-error`` finding."""
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        finding = Finding(
            path=report_path,
            line=exc.lineno or 1,
            col=(exc.offset or 1),
            rule=PARSE_ERROR_RULE,
            message=f"module does not parse: {exc.msg}",
            hint="fix the syntax error; no rules were checked",
            relpath=relpath,
        )
        return None, [finding]
    return ModuleContext(report_path, relpath, source, tree), []


def _suppression_findings(ctx: ModuleContext) -> list[Finding]:
    """Findings for malformed / unjustified suppression comments."""
    findings: list[Finding] = []
    for noqa in ctx.suppressions.values():
        problems = []
        if not noqa.rules:
            problems.append("names no rule ids")
        if noqa.reason is None:
            problems.append("records no reason")
        if problems:
            findings.append(
                Finding(
                    path=ctx.path,
                    line=noqa.line,
                    col=0,
                    rule=SUPPRESSION_RULE,
                    message=f"suppression {' and '.join(problems)}",
                    hint=(
                        "write `# repro: noqa[rule-id] -- why this is"
                        " intentionally exempt`"
                    ),
                    relpath=ctx.relpath,
                )
            )
    return findings


def _ensure_project(rules: Sequence[Rule], contexts: Sequence[ModuleContext]) -> None:
    """Give project-requiring rules a Project when none was installed.

    The single-module fallback lets fixture tests drive an
    interprocedural rule through :func:`lint_source` without staging a
    whole tree: the "program" is just that module.
    """
    needing = [rule for rule in rules if rule.needs_project and rule.project is None]
    if not needing:
        return
    from repro.analysis.flow.project import Project

    project = Project(contexts)
    for rule in needing:
        rule.set_project(project)


def _lint_context(
    ctx: ModuleContext, rules: Sequence[Rule], respect_scope: bool
) -> list[Finding]:
    """Run every applicable rule over one parsed module."""
    findings = _suppression_findings(ctx)
    for rule in rules:
        if respect_scope and not rule.applies_to(ctx.relpath):
            continue
        for finding in rule.check(ctx):
            if not ctx.suppressed(finding.line, finding.rule):
                findings.append(finding)
    return findings


def lint_source(
    source: str,
    relpath: str,
    rules: Sequence[Rule] | None = None,
    *,
    path: str | None = None,
    respect_scope: bool = True,
) -> list[Finding]:
    """Lint one module given as text; the core entry point tests drive.

    Parameters
    ----------
    source:
        Module text.
    relpath:
        Path relative to the ``repro`` package root, used for rule
        scoping and (by default) for report paths.
    rules:
        Rules to run; defaults to :func:`default_rules`.  Rules with
        ``needs_project`` get a single-module Project built on the fly
        when none is already installed.
    path:
        Report path; defaults to ``relpath``.
    respect_scope:
        When False, every rule runs regardless of its ``paths`` scope —
        the fixture tests use this to aim one rule at one file.
    """
    report_path = relpath if path is None else path
    active = list(default_rules() if rules is None else rules)
    ctx, findings = _parse_context(source, relpath, report_path)
    if ctx is None:
        return findings
    _ensure_project(active, [ctx])
    findings = _lint_context(ctx, active, respect_scope)
    findings.sort()
    return findings


def _iter_module_files(paths: Iterable[Path]) -> Iterator[Path]:
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def package_root() -> Path:
    """Directory of the installed ``repro`` package (linting default)."""
    return Path(__file__).resolve().parent.parent


@dataclasses.dataclass
class LintRun:
    """Everything one engine run produced.

    ``stats`` carries the call-graph measurements in flow mode
    (``calls``/``resolved``/``external``/``rate``); empty otherwise.
    """

    findings: list[Finding]
    stats: dict[str, object] = dataclasses.field(default_factory=dict)


def _load_tree(
    targets: Sequence[Path], base: Path
) -> "tuple[list[ModuleContext], list[Finding]]":
    """Parse every module under ``targets`` once, relative to ``base``."""
    contexts: list[ModuleContext] = []
    findings: list[Finding] = []
    for module in _iter_module_files(targets):
        try:
            relpath = module.relative_to(base).as_posix()
        except ValueError:
            relpath = module.name
        try:
            source = module.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            findings.append(
                Finding(
                    path=str(module),
                    line=1,
                    col=0,
                    rule=PARSE_ERROR_RULE,
                    message=f"module is unreadable: {exc}",
                    hint="the file must be readable UTF-8 to be checked",
                    relpath=relpath,
                )
            )
            continue
        ctx, parse_findings = _parse_context(source, relpath, str(module))
        findings.extend(parse_findings)
        if ctx is not None:
            contexts.append(ctx)
    return contexts, findings


def lint_tree(
    paths: Sequence[str | Path] | None = None,
    *,
    root: Path | None = None,
    rules: Sequence[Rule] | None = None,
    respect_scope: bool = True,
    flow: bool = False,
) -> LintRun:
    """Lint files/directories; the full-featured entry point.

    In flow mode the *whole* package under ``root`` is parsed once and
    resolved into a project call graph — even when ``paths`` narrows
    which modules get findings reported — because interprocedural facts
    about a module depend on its callers and callees everywhere else.
    ``paths`` then only scopes the report, never the analysis.
    """
    base = package_root() if root is None else Path(root).resolve()
    targets = [Path(p).resolve() for p in paths] if paths else [base]
    if rules is None:
        active = list(default_rules())
        if flow:
            active.extend(flow_rules())
    else:
        active = list(rules)

    stats: dict[str, object] = {}
    contexts, findings = _load_tree(targets, base)
    if flow:
        if paths:
            # The analysis always sees the whole package; explicitly
            # targeted modules outside it (fixtures) join the program.
            program, _ = _load_tree([base], base)
            known = {ctx.relpath for ctx in program}
            program.extend(
                ctx for ctx in contexts if ctx.relpath not in known
            )
        else:
            program = contexts
        from repro.analysis.flow.project import Project

        project = Project(program)
        stats = project.callgraph.stats()
        for rule in active:
            rule.set_project(project)
    else:
        _ensure_project(active, contexts)

    for ctx in contexts:
        findings.extend(_lint_context(ctx, active, respect_scope))
    findings.sort()
    return LintRun(findings=findings, stats=stats)


def lint_paths(
    paths: Sequence[str | Path] | None = None,
    *,
    root: Path | None = None,
    rules: Sequence[Rule] | None = None,
    respect_scope: bool = True,
    flow: bool = False,
) -> list[Finding]:
    """Lint files/directories; the entry point behind ``repro lint``.

    Parameters
    ----------
    paths:
        Files or directories to lint; defaults to the whole ``repro``
        package tree.
    root:
        Package root that relpaths (rule scopes) are computed against;
        defaults to the installed ``repro`` package directory.  Files
        outside ``root`` scope by their bare file name.
    rules, respect_scope:
        As :func:`lint_source`.
    flow:
        Build the whole-program call graph and run project-aware rules
        against it (see :func:`lint_tree`, which also exposes the
        resolution statistics).
    """
    return lint_tree(
        paths, root=root, rules=rules, respect_scope=respect_scope, flow=flow
    ).findings


def format_text(findings: Sequence[Finding]) -> str:
    """Human-readable report: one finding per line plus a summary."""
    lines = [finding.format() for finding in findings]
    noun = "finding" if len(findings) == 1 else "findings"
    lines.append(f"{len(findings)} {noun}")
    return "\n".join(lines)


def format_json(
    findings: Sequence[Finding],
    rules: Sequence[Rule] | None = None,
    extra: "dict[str, object] | None" = None,
) -> str:
    """Machine-readable report (the CI artifact format).

    ``extra`` merges additional top-level sections into the payload —
    ``repro lint --flow`` adds ``callgraph`` (resolution statistics)
    and ``baseline`` (ratchet accounting) this way.
    """
    active = default_rules() if rules is None else list(rules)
    payload: dict[str, object] = {
        "count": len(findings),
        "rules": [
            {"id": rule.id, "summary": rule.summary} for rule in active
        ],
        "findings": [finding.as_dict() for finding in findings],
    }
    if extra:
        payload.update(extra)
    return json.dumps(payload, indent=2, sort_keys=True)
