"""The static-analysis rule engine: walking, dispatch, suppression.

Design
------
A :class:`Rule` sees one :class:`ModuleContext` at a time — the parsed
AST plus the raw source, the project-relative path, and the parsed
suppression comments — and yields :class:`Finding` objects.  The engine
owns everything rule authors should not have to re-implement:

- **walking** (:func:`lint_paths`): expand files/directories into the
  ``.py`` modules to check, compute each module's path relative to the
  ``repro`` package so rules can scope themselves to ``core/`` or
  ``serve/``,
- **dispatch**: run every applicable rule over every module, in a
  deterministic order (paths sorted, rules in registration order),
- **suppression**: drop findings whose line carries a
  ``# repro: noqa[rule-id] -- reason`` comment for that rule id.  A
  suppression *requires* the reason string — a silenced check with no
  recorded justification is itself reported (rule id ``suppression``),
  and that report cannot be suppressed,
- **robust failure**: a module that does not parse produces a single
  ``parse-error`` finding instead of crashing the run.

Suppression syntax
------------------
::

    risky_line()  # repro: noqa[typed-errors] -- fault injection must catch everything
    other_line()  # repro: noqa[determinism, guard-coverage] -- reason here

The comment silences only the listed rule ids, only on its own physical
line (put it on the ``def`` line for function-level findings, on the
``except`` line for handler findings).  ``[*]`` is deliberately not
supported: every suppression names what it hides.
"""

from __future__ import annotations

import ast
import dataclasses
import io
import json
import re
import tokenize
from pathlib import Path
from typing import Iterable, Iterator, Sequence

#: ``# repro: noqa[rule-a, rule-b] -- reason`` (reason optional at parse
#: time; its absence is reported as a ``suppression`` finding).
NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa\[(?P<rules>[^\]]*)\]\s*(?:--\s*(?P<reason>\S.*))?"
)

#: Rule id for a malformed / unjustified suppression comment.
SUPPRESSION_RULE = "suppression"

#: Rule id reported when a module cannot be parsed at all.
PARSE_ERROR_RULE = "parse-error"


@dataclasses.dataclass(frozen=True, order=True)
class Finding:
    """One rule violation, anchored to a file and line.

    Orders by ``(path, line, col, rule)`` so reports are deterministic
    regardless of rule execution order.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    hint: str = ""

    def format(self) -> str:
        """Render as ``path:line:col: [rule] message (hint: ...)``."""
        text = f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"
        if self.hint:
            text = f"{text} (hint: {self.hint})"
        return text

    def as_dict(self) -> dict[str, object]:
        """JSON-ready representation (used by ``repro lint --format json``)."""
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class Suppression:
    """A parsed ``# repro: noqa[...]`` comment on one physical line."""

    line: int
    rules: tuple[str, ...]
    reason: str | None


class ModuleContext:
    """Everything a rule may inspect about one module.

    Attributes
    ----------
    path:
        Filesystem path of the module (as given to the engine).
    relpath:
        POSIX path relative to the ``repro`` package root (e.g.
        ``core/layers.py``); rules scope themselves against this.
    source:
        Raw module text.
    tree:
        The parsed :class:`ast.Module`.
    suppressions:
        ``line -> Suppression`` for every ``# repro: noqa[...]`` comment.
    """

    def __init__(self, path: str, relpath: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.relpath = relpath
        self.source = source
        self.tree = tree
        self.lines = source.splitlines()
        self.suppressions = parse_suppressions(source)

    def suppressed(self, line: int, rule: str) -> bool:
        """True when ``rule`` is silenced on this physical ``line``."""
        noqa = self.suppressions.get(line)
        return noqa is not None and rule in noqa.rules


class Rule:
    """Base class for one domain rule.

    Subclasses set :attr:`id`, :attr:`summary`, :attr:`hint`, and
    optionally :attr:`paths` (relpath prefixes the rule applies to —
    empty means every module), then implement :meth:`check`.
    """

    id: str = ""
    summary: str = ""
    hint: str = ""
    #: Relpath prefixes this rule scopes itself to ("" matches all).
    paths: tuple[str, ...] = ()

    def applies_to(self, relpath: str) -> bool:
        """Whether this rule should run over the module at ``relpath``."""
        if not self.paths:
            return True
        return any(relpath.startswith(prefix) for prefix in self.paths)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Yield every violation of this rule in ``ctx``."""
        raise NotImplementedError

    def finding(
        self,
        ctx: ModuleContext,
        node: ast.AST | int,
        message: str,
        hint: str | None = None,
    ) -> Finding:
        """Build a :class:`Finding` anchored at ``node`` (or a line number)."""
        if isinstance(node, int):
            line, col = node, 0
        else:
            line = getattr(node, "lineno", 1)
            col = getattr(node, "col_offset", 0) + 1
        return Finding(
            path=ctx.path,
            line=line,
            col=col if not isinstance(node, int) else 0,
            rule=self.id,
            message=message,
            hint=self.hint if hint is None else hint,
        )


def parse_suppressions(source: str) -> dict[int, Suppression]:
    """Map physical line number -> parsed ``# repro: noqa[...]`` comment.

    Scans real COMMENT tokens (not raw text), so a suppression example
    quoted inside a docstring is never treated as live.
    """
    result: dict[int, Suppression] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return result
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = NOQA_RE.search(token.string)
        if match is None:
            continue
        lineno = token.start[0]
        rules = tuple(
            part.strip() for part in match.group("rules").split(",") if part.strip()
        )
        reason = match.group("reason")
        result[lineno] = Suppression(line=lineno, rules=rules, reason=reason)
    return result


def default_rules() -> list[Rule]:
    """The shipped rule set, in catalog order."""
    from repro.analysis.rules import ALL_RULES

    return [cls() for cls in ALL_RULES]


def lint_source(
    source: str,
    relpath: str,
    rules: Sequence[Rule] | None = None,
    *,
    path: str | None = None,
    respect_scope: bool = True,
) -> list[Finding]:
    """Lint one module given as text; the core entry point tests drive.

    Parameters
    ----------
    source:
        Module text.
    relpath:
        Path relative to the ``repro`` package root, used for rule
        scoping and (by default) for report paths.
    rules:
        Rules to run; defaults to :func:`default_rules`.
    path:
        Report path; defaults to ``relpath``.
    respect_scope:
        When False, every rule runs regardless of its ``paths`` scope —
        the fixture tests use this to aim one rule at one file.
    """
    report_path = relpath if path is None else path
    active = list(default_rules() if rules is None else rules)
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            Finding(
                path=report_path,
                line=exc.lineno or 1,
                col=(exc.offset or 1),
                rule=PARSE_ERROR_RULE,
                message=f"module does not parse: {exc.msg}",
                hint="fix the syntax error; no rules were checked",
            )
        ]
    ctx = ModuleContext(report_path, relpath, source, tree)

    findings: list[Finding] = []
    for noqa in ctx.suppressions.values():
        problems = []
        if not noqa.rules:
            problems.append("names no rule ids")
        if noqa.reason is None:
            problems.append("records no reason")
        if problems:
            findings.append(
                Finding(
                    path=report_path,
                    line=noqa.line,
                    col=0,
                    rule=SUPPRESSION_RULE,
                    message=f"suppression {' and '.join(problems)}",
                    hint=(
                        "write `# repro: noqa[rule-id] -- why this is"
                        " intentionally exempt`"
                    ),
                )
            )

    for rule in active:
        if respect_scope and not rule.applies_to(relpath):
            continue
        for finding in rule.check(ctx):
            if not ctx.suppressed(finding.line, finding.rule):
                findings.append(finding)
    findings.sort()
    return findings


def _iter_module_files(paths: Iterable[Path]) -> Iterator[Path]:
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def package_root() -> Path:
    """Directory of the installed ``repro`` package (linting default)."""
    return Path(__file__).resolve().parent.parent


def lint_paths(
    paths: Sequence[str | Path] | None = None,
    *,
    root: Path | None = None,
    rules: Sequence[Rule] | None = None,
    respect_scope: bool = True,
) -> list[Finding]:
    """Lint files/directories; the entry point behind ``repro lint``.

    Parameters
    ----------
    paths:
        Files or directories to lint; defaults to the whole ``repro``
        package tree.
    root:
        Package root that relpaths (rule scopes) are computed against;
        defaults to the installed ``repro`` package directory.  Files
        outside ``root`` scope by their bare file name.
    rules, respect_scope:
        As :func:`lint_source`.
    """
    base = package_root() if root is None else Path(root).resolve()
    targets = [Path(p).resolve() for p in paths] if paths else [base]
    active = list(default_rules() if rules is None else rules)

    findings: list[Finding] = []
    for module in _iter_module_files(targets):
        try:
            relpath = module.relative_to(base).as_posix()
        except ValueError:
            relpath = module.name
        try:
            source = module.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            findings.append(
                Finding(
                    path=str(module),
                    line=1,
                    col=0,
                    rule=PARSE_ERROR_RULE,
                    message=f"module is unreadable: {exc}",
                    hint="the file must be readable UTF-8 to be checked",
                )
            )
            continue
        findings.extend(
            lint_source(
                source,
                relpath,
                active,
                path=str(module),
                respect_scope=respect_scope,
            )
        )
    findings.sort()
    return findings


def format_text(findings: Sequence[Finding]) -> str:
    """Human-readable report: one finding per line plus a summary."""
    lines = [finding.format() for finding in findings]
    noun = "finding" if len(findings) == 1 else "findings"
    lines.append(f"{len(findings)} {noun}")
    return "\n".join(lines)


def format_json(findings: Sequence[Finding], rules: Sequence[Rule] | None = None) -> str:
    """Machine-readable report (the CI artifact format)."""
    active = default_rules() if rules is None else list(rules)
    payload = {
        "count": len(findings),
        "rules": [
            {"id": rule.id, "summary": rule.summary} for rule in active
        ],
        "findings": [finding.as_dict() for finding in findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
