"""Command-line interface: build, query, inspect, and maintain DG indexes.

A small operational surface over the library, in the shape a downstream
user expects from an index tool::

    python -m repro generate --kind U --n 10000 --dims 3 --out data.npz
    python -m repro build    --data data.npz --out index.npz --theta 16
    python -m repro query    --index index.npz --weights 0.5,0.3,0.2 --k 10
    python -m repro query    --index index.npz --weights 0.5,0.3,0.2 \\
                             --budget-ms 50 --budget-records 500
    python -m repro inspect  --index index.npz --validate
    python -m repro doctor   --index index.npz --repair
    python -m repro insert   --index index.npz --limit 100
    python -m repro delete   --index index.npz --record-id 81
    python -m repro compare  --data data.npz --k 10 --queries 20
    python -m repro experiment --name fig5 --kind U

Datasets are stored as ``.npz`` archives with ``values`` and
``attribute_names`` keys; indexes use the :mod:`repro.core.io` format.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

import numpy as np

from repro.bench import experiments
from repro.bench.report import format_table
from repro.core.builder import build_dominant_graph, build_extended_graph
from repro.core.dataset import Dataset
from repro.core.functions import LinearFunction
from repro.core.guard import run_query
from repro.core.io import load_graph, repair_graph, save_graph
from repro.core.maintenance import delete_record, insert_record
from repro.data.generators import make_dataset
from repro.data.server import server_dataset
from repro.errors import (
    IndexCorruptionError,
    QueryBudgetExceeded,
    WALCorruptionError,
)
from repro.metrics.timing import Timer


def save_dataset(dataset: Dataset, path: str) -> str:
    """Write a dataset to a ``.npz`` archive (values + attribute names)."""
    if not path.endswith(".npz"):
        path = path + ".npz"
    np.savez_compressed(
        path,
        values=dataset.values,
        attribute_names=np.asarray(dataset.attribute_names, dtype=str),
    )
    return path


def load_dataset(path: str) -> Dataset:
    """Read a dataset written by :func:`save_dataset`."""
    with np.load(path, allow_pickle=False) as archive:
        return Dataset(
            archive["values"],
            attribute_names=[str(a) for a in archive["attribute_names"]],
        )


def _parse_weights(text: str) -> LinearFunction:
    try:
        weights = [float(w) for w in text.split(",") if w.strip()]
    except ValueError as exc:
        raise SystemExit(f"bad --weights {text!r}: {exc}")
    if not weights:
        raise SystemExit("--weights must list at least one number")
    return LinearFunction(weights)


def cmd_generate(args: argparse.Namespace) -> int:
    """Generate a synthetic dataset archive (`repro generate`)."""
    if args.kind.lower() == "server":
        dataset = server_dataset(args.n, seed=args.seed)
    else:
        dataset = make_dataset(args.kind, args.n, args.dims, seed=args.seed)
    path = save_dataset(dataset, args.out)
    print(f"wrote {len(dataset)} x {dataset.dims} records to {path}")
    return 0


def cmd_build(args: argparse.Namespace) -> int:
    """Build and persist a DG index (`repro build`)."""
    dataset = load_dataset(args.data)
    with Timer() as timer:
        if args.plain:
            graph = build_dominant_graph(dataset)
        else:
            graph = build_extended_graph(dataset, theta=args.theta, seed=args.seed)
    path = save_graph(graph, args.out)
    print(
        f"built DG over {len(dataset)} records in {timer.elapsed:.2f}s: "
        f"{graph.num_layers} layers, {graph.num_pseudo} pseudo records, "
        f"{graph.edge_count()} edges -> {path}"
    )
    return 0


def _load_batch_functions(path: str, dims: int) -> list:
    """Parse a --batch file: one comma-separated weight vector per line."""
    functions = []
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            text = line.split("#", 1)[0].strip()
            if not text:
                continue
            function = _parse_weights(text)
            if function.dims != dims:
                raise SystemExit(
                    f"{path}:{lineno}: weight vector has {function.dims} "
                    f"entries, index has {dims} attributes"
                )
            functions.append(function)
    if not functions:
        raise SystemExit(f"--batch file {path!r} contains no weight vectors")
    return functions


def _cmd_query_batch(args: argparse.Namespace, graph) -> int:
    """The `repro query --batch` path: many queries, one compiled sweep."""
    from repro.core.compiled import batch_top_k

    if args.budget_ms is not None or args.budget_records is not None:
        raise SystemExit("--batch does not support query budgets")
    if args.explain:
        raise SystemExit("--batch does not support --explain")
    functions = _load_batch_functions(args.batch, graph.dataset.dims)
    compiled = graph.compile()
    with Timer() as timer:
        if args.workers > 0:
            from repro.parallel import ParallelQueryExecutor

            with ParallelQueryExecutor(
                compiled, workers=args.workers
            ) as pool:
                results = pool.map_queries(functions, args.k, mode="batch")
        else:
            results = batch_top_k(compiled, functions, args.k)
    per_query = 1000 * timer.elapsed / len(results)
    scored = sum(r.stats.computed for r in results)
    print(
        f"{len(results)} queries in {1000 * timer.elapsed:.2f}ms "
        f"({per_query:.3f} ms/query, {scored} records scored, "
        f"workers={args.workers})"
    )
    for index, result in enumerate(results):
        row = ", ".join(f"{rid}:{score:g}" for rid, score in result)
        print(f"  q{index}: [{row}]")
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    """Answer linear top-k queries against an index (`repro query`)."""
    graph = load_graph(args.index)
    if args.batch:
        if args.weights:
            raise SystemExit("--weights and --batch are mutually exclusive")
        return _cmd_query_batch(args, graph)
    if not args.weights:
        raise SystemExit("one of --weights or --batch is required")
    function = _parse_weights(args.weights)
    if function.dims != graph.dataset.dims:
        raise SystemExit(
            f"--weights has {function.dims} entries, index has "
            f"{graph.dataset.dims} attributes"
        )
    if args.workers > 0:
        if args.budget_ms is not None or args.budget_records is not None:
            raise SystemExit("--workers does not support query budgets")
        from repro.parallel import ParallelQueryExecutor

        with Timer() as timer:
            with ParallelQueryExecutor(
                graph.compile(), workers=args.workers
            ) as pool:
                result = pool.query(function, args.k)
        print(
            f"top-{args.k} in {1000 * timer.elapsed:.2f}ms "
            f"({result.stats.computed} records scored, "
            f"{args.workers}-worker fabric):"
        )
        names = graph.dataset.attribute_names
        for rank, (rid, score) in enumerate(result, start=1):
            detail = ", ".join(
                f"{name}={value:g}"
                for name, value in zip(names, graph.vector(rid))
            )
            print(f"  {rank:3d}. record {rid}  score={score:g}  [{detail}]")
        return 0
    if args.explain:
        from repro.core.explain import explain_top_k

        profile = explain_top_k(graph, function, args.k)
        print(profile.format())
        return 0
    try:
        with Timer() as timer:
            result = run_query(
                graph,
                function,
                args.k,
                engine=args.engine,
                budget_ms=args.budget_ms,
                budget_records=args.budget_records,
                fallback=not args.no_fallback,
            )
    except QueryBudgetExceeded as exc:
        print(f"budget exceeded: {exc}", file=sys.stderr)
        return 3
    names = graph.dataset.attribute_names
    print(f"top-{args.k} in {1000 * timer.elapsed:.2f}ms "
          f"({result.stats.computed} records scored, {result.tier} tier):")
    for rank, (rid, score) in enumerate(result, start=1):
        detail = ", ".join(
            f"{name}={value:g}" for name, value in zip(names, graph.vector(rid))
        )
        print(f"  {rank:3d}. record {rid}  score={score:g}  [{detail}]")
    return 0


def cmd_inspect(args: argparse.Namespace) -> int:
    """Print index statistics, optionally validating (`repro inspect`)."""
    graph = load_graph(args.index)
    dataset = graph.dataset
    print(f"index: {args.index}")
    print(f"  records: {len(dataset)} x {dataset.dims} "
          f"({', '.join(dataset.attribute_names)})")
    print(f"  indexed: {len(graph)} ({graph.num_pseudo} pseudo)")
    print(f"  layers:  {graph.num_layers}, edges: {graph.edge_count()}")
    sizes = graph.layer_sizes()
    preview = ", ".join(str(s) for s in sizes[:12])
    suffix = ", ..." if len(sizes) > 12 else ""
    print(f"  layer sizes: [{preview}{suffix}]")
    if args.validate:
        from repro.core.verify import format_issues, verify_graph

        issues = verify_graph(graph)
        print("  " + format_issues(issues).replace("\n", "\n  "))
        return 1 if issues else 0
    return 0


def _cross_check_compiled(graph) -> list:
    """Probe-query divergence check: compiled engine vs reference Traveler.

    The two engines are bit-identical by contract (PR 1); a divergence
    here means the index data itself round-trips differently through the
    flat-array compile, which deep verification alone cannot see.
    """
    from repro.core.advanced import AdvancedTraveler
    from repro.core.compiled import CompiledAdvancedTraveler

    if not len(graph) or not graph.real_ids():
        return []
    problems = []
    compiled = graph.compile()
    rng = np.random.default_rng(0)
    k = min(10, len(graph.real_ids()))
    for trial in range(4):
        weights = rng.dirichlet(np.ones(graph.dataset.dims))
        function = LinearFunction(weights)
        reference = AdvancedTraveler(graph).top_k(function, k)
        fast = CompiledAdvancedTraveler(compiled).top_k(function, k)
        if reference.ids != fast.ids or reference.scores != fast.scores:
            problems.append(
                f"compiled engine diverges from the reference Traveler on "
                f"probe query {trial} "
                f"(weights {np.round(weights, 3).tolist()}, k={k})"
            )
    return problems


def cmd_doctor(args: argparse.Namespace) -> int:
    """Diagnose — and optionally repair — a persisted index (`repro doctor`).

    This is the *runtime* half of the project's checking story: it
    verifies the data a process would actually serve (structural
    invariants via ``verify_graph``, plus a compiled-vs-reference engine
    cross-check on probe queries), audits ``/dev/shm`` for segments
    leaked by dead query fabrics, — with ``--wal`` — scans a
    write-ahead log for torn tails and mid-log corruption, and — with
    ``--store`` — audits an index-store directory for orphaned
    generations, a damaged ``CURRENT`` pointer, stamp drift, stray
    temps, and quarantine backlog.  The
    *static* half — source-level contract checks that need no index at
    all — is ``repro lint``.  ``--format json`` emits the whole report
    as one machine-readable object for dashboards and CI.

    Exit status: 0 healthy (or repaired clean), 1 deep-verification
    issues or engine divergence, 2 corruption (unrepaired, unrepairable,
    or a damaged WAL beyond its recoverable torn tail).
    """
    from repro.core.verify import format_issues, verify_graph
    from repro.parallel.shm import leaked_segments

    text = args.format != "json"
    report: dict = {"index": args.index}

    def say(line: str) -> None:
        if text:
            print(line)

    def finish(code: int) -> int:
        report["exit_code"] = code
        if not text:
            print(json.dumps(report, indent=2, sort_keys=True))
        return code

    say(f"doctor: {args.index}")
    try:
        graph = load_graph(args.index)
    except FileNotFoundError as exc:
        say(f"  cannot read index: {exc}")
        report["error"] = f"cannot read index: {exc}"
        return finish(2)
    except IndexCorruptionError as exc:
        say(f"  CORRUPT: {exc}")
        report["corruption"] = str(exc)
        if not args.repair:
            say("  re-run with --repair to rebuild from surviving data")
            return finish(2)
        try:
            graph, notes = repair_graph(args.index)
        except IndexCorruptionError as fatal:
            say(f"  unrepairable: {fatal}")
            report["error"] = f"unrepairable: {fatal}"
            return finish(2)
        for note in notes:
            say(f"  repair: {note}")
        out = args.out if args.out else args.index
        save_graph(graph, out)
        say(f"  repaired index written to {out}")
        report["repaired"] = {"notes": list(notes), "out": out}
    say(f"  records indexed: {len(graph)} ({graph.num_pseudo} pseudo), "
        f"layers: {graph.num_layers}, edges: {graph.edge_count()}")
    report["graph"] = {
        "records": len(graph),
        "pseudo": graph.num_pseudo,
        "layers": graph.num_layers,
        "edges": graph.edge_count(),
    }
    issues = verify_graph(graph)
    say("  " + format_issues(issues).replace("\n", "\n  "))
    report["issues"] = [str(issue) for issue in issues]
    mismatches = _cross_check_compiled(graph)
    report["cross_check_mismatches"] = list(mismatches)
    if mismatches:
        for note in mismatches:
            say(f"  cross-check: {note}")
    else:
        say("  cross-check: compiled engine matches the reference "
            "Traveler on probe queries")
    leaked = leaked_segments()
    report["shm"] = {"leaked_segments": leaked}
    if leaked:
        say(f"  shm: {len(leaked)} repro-dg segment(s) present in "
            f"/dev/shm: {', '.join(leaked)} (leaked unless a live "
            "fabric owns them)")
    else:
        say("  shm: no repro-dg segments in /dev/shm")
    store_damaged = False
    store_issues: list = []
    if getattr(args, "store", None):
        from repro.store.directory import StoreDirectory

        audit = StoreDirectory(args.store).audit()
        report["store"] = audit
        store_issues = list(audit["issues"])
        # Damage (an unopenable live generation) is exit-2 territory;
        # hygiene findings — orphans, stray temps, quarantine backlog,
        # stamp drift — are exit-1 issues like deep-verify findings.
        store_damaged = any(
            "corrupt" in issue or "missing" in issue
            for issue in store_issues
        )
        if audit["current"] is None and not store_issues:
            say(f"  store: {args.store}: empty (no CURRENT, no "
                "generation files)")
        elif not store_issues:
            say(f"  store: generation {audit['generation']} live "
                f"({audit['current']}), "
                f"{len(audit['generations'])} generation file(s), "
                "no issues")
        else:
            say(f"  store: {len(store_issues)} issue(s):")
            for issue in store_issues:
                say(f"    - {issue}")
            if audit["orphans"]:
                say(f"    orphans: {', '.join(audit['orphans'])}")
        # Delta-overlay sidecar: derived data (the WAL is the durable
        # truth), so a damaged or stale sidecar is reported but never
        # fails the diagnosis.
        sidecar_path = os.path.join(args.store, "delta-current.dgs")
        if os.path.exists(sidecar_path):
            from repro.store.deltastore import load_delta_store

            try:
                overlay, stamp = load_delta_store(sidecar_path)
            except Exception as exc:  # repro: noqa[typed-errors] -- any unreadable sidecar is the same diagnosis: derived data to be discarded, not a failure
                say(f"  overlay: sidecar unreadable "
                    f"({type(exc).__name__}: {exc}); recovery ignores it")
                report["overlay"] = {"sidecar": sidecar_path,
                                     "error": str(exc)}
            else:
                say(f"  overlay: {overlay.delta_count} delta record(s), "
                    f"{overlay.deleted_count} deleted row(s) over base "
                    f"generation {stamp.generation} "
                    f"(applied_seq {stamp.applied_seq})")
                report["overlay"] = {
                    "sidecar": sidecar_path,
                    "delta_records": overlay.delta_count,
                    "deleted_rows": overlay.deleted_count,
                    "base_generation": stamp.generation,
                    "applied_seq": stamp.applied_seq,
                }
        else:
            say("  overlay: no delta sidecar (all changes folded)")
            report["overlay"] = {"sidecar": None}
    wal_damaged = False
    if args.wal:
        from repro.serve.wal import scan_wal

        try:
            scan = scan_wal(args.wal)
        except (FileNotFoundError, WALCorruptionError) as exc:
            say(f"  wal: DAMAGED: {exc}")
            report["wal"] = {"path": args.wal, "error": str(exc)}
            wal_damaged = True
        else:
            report["wal"] = {
                "path": args.wal,
                "base_seq": scan.base_seq,
                "records": len(scan.records),
                "valid_bytes": scan.valid_bytes,
                "torn_bytes": scan.torn_bytes,
            }
            if scan.torn_bytes:
                say(f"  wal: {len(scan.records)} intact record(s); "
                    f"torn tail of {scan.torn_bytes} byte(s) will be "
                    "dropped on recovery")
            else:
                say(f"  wal: {len(scan.records)} intact record(s), "
                    "clean tail")
    if wal_damaged or store_damaged:
        return finish(2)
    return finish(1 if issues or mismatches or store_issues else 0)


def cmd_chaos(args: argparse.Namespace) -> int:
    """Run the chaos scenario suite against live indexes (`repro chaos`).

    Each scenario boots a fresh :class:`~repro.serve.index.ServingIndex`
    (real fabric workers, real WAL), runs its scripted fault schedule,
    and asserts the resilience invariants: never a wrong answer, never a
    query wedged past its deadline, bounded recovery time.  ``--out``
    writes the ``BENCH_resilience.json`` payload (availability, p99
    latency under fault, per-fault recovery time).

    Exit status: 0 when every scenario×seed run upholds every
    invariant, 1 when any invariant is violated, 2 on an unknown
    scenario name.
    """
    import time as time_module
    import warnings

    from repro.errors import DegradedResultWarning
    from repro.testing.scenarios import SCENARIOS, ChaosConfig, run_suite

    if args.list:
        for name, script in SCENARIOS.items():
            summary = (script.__doc__ or "").strip().splitlines()[0]
            print(f"{name}: {summary}")
        return 0
    names = args.scenario if args.scenario else None
    unknown = sorted(set(names or []) - set(SCENARIOS))
    if unknown:
        print(
            f"unknown scenario(s): {', '.join(unknown)} "
            f"(known: {', '.join(SCENARIOS)})",
            file=sys.stderr,
        )
        return 2
    config = ChaosConfig(
        records=args.records,
        rounds=args.rounds,
        deadline_ms=args.deadline_ms,
        reply_timeout=args.reply_timeout,
    )
    with warnings.catch_warnings():
        # Degradations are the point of the exercise; the reports tally
        # them, so the per-query warnings are pure noise here.
        warnings.simplefilter("ignore", DegradedResultWarning)
        reports = run_suite(names, seeds=args.seeds, config=config)
    for report in reports:
        verdict = "PASS" if report.passed else "FAIL"
        print(
            f"{verdict} {report.name} (seed {report.seed}): "
            f"availability {report.availability:.1%}, "
            f"p99 {report.p99_ms:.0f} ms, "
            f"recovery "
            + (
                f"{report.recovery_ms:.0f} ms"
                if report.recovery_ms is not None
                else "never"
            )
        )
        if not report.passed:
            failed = sorted(
                name
                for name, held in report.invariants().items()
                if not held
            )
            print(f"  violated: {', '.join(failed)}")
            for event in report.events:
                print(f"  {event}")
    passed = all(report.passed for report in reports)
    if args.out:
        payload = {
            "bench": "resilience",
            "generated_at": time_module.strftime(
                "%Y-%m-%dT%H:%M:%S%z", time_module.localtime()
            ),
            "config": {
                "records": config.records,
                "rounds": config.rounds,
                "deadline_ms": config.deadline_ms,
                "reply_timeout": config.reply_timeout,
                "workers": config.workers,
                "recovery_limit_ms": config.recovery_limit_ms,
            },
            "seeds": list(args.seeds),
            "scenarios": [report.to_dict() for report in reports],
            "passed": passed,
        }
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.out}")
    return 0 if passed else 1


def _changed_py_paths() -> "list[str] | None":
    """Changed/untracked ``.py`` files per git; ``None`` outside a repo.

    ``repro lint --changed`` scopes the report to files touched since
    ``HEAD`` (working tree + index) plus untracked files.  Outside a
    git checkout there is no diff to scope by, so the caller falls back
    to the full tree rather than silently linting nothing.
    """
    import subprocess

    def _git(*argv: str) -> "list[str] | None":
        try:
            proc = subprocess.run(
                ["git", *argv], capture_output=True, text=True, timeout=30
            )
        except (OSError, subprocess.TimeoutExpired):
            return None
        if proc.returncode != 0:
            return None
        return proc.stdout.splitlines()

    changed = _git("diff", "--name-only", "HEAD")
    if changed is None:
        return None
    untracked = _git("ls-files", "-o", "--exclude-standard") or []
    top = _git("rev-parse", "--show-toplevel")
    root = Path(top[0]) if top else Path.cwd()
    result = []
    for name in {*changed, *untracked}:
        if not name.endswith(".py"):
            continue
        path = root / name
        if path.exists():
            result.append(str(path))
    return sorted(result)


def cmd_lint(args: argparse.Namespace) -> int:
    """Run the project's AST static analyzer (`repro lint`).

    This is the *static* half of the checking story: source-level rules
    for the contracts the paper and the serving layer impose (snapshot
    immutability, stats threading, typed errors, determinism, writer
    discipline, dtype discipline, guard coverage, public-API docs).
    ``--flow`` adds the whole-program layer: the project call graph
    (with a measured resolution rate), the resource-lifecycle /
    exception-escape / deadline-propagation passes, and the committed
    findings baseline that turns CI into a ratchet.  The *runtime*
    half — verifying an actual index's data — is ``repro doctor``.

    Exit status: 0 clean (or findings without ``--strict``), 1 findings
    under ``--strict`` (in flow mode: *new-after-baseline* findings, or
    a call-graph resolution rate below the floor), 2 bad rule selection
    or an unreadable baseline.
    """
    from repro.analysis import (
        default_rules,
        flow_rules,
        format_json,
        format_text,
        lint_tree,
    )

    rules = list(default_rules())
    if args.flow:
        rules.extend(flow_rules())
    if args.select:
        wanted = {r.strip() for r in args.select.split(",") if r.strip()}
        known = {rule.id for rule in rules}
        unknown = sorted(wanted - known)
        if unknown:
            print(
                f"unknown rule id(s): {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})",
                file=sys.stderr,
            )
            return 2
        rules = [rule for rule in rules if rule.id in wanted]

    paths = args.paths or None
    if args.changed:
        changed = _changed_py_paths()
        if changed is None:
            print(
                "lint --changed: not a git checkout; linting the full tree",
                file=sys.stderr,
            )
        elif not changed:
            print("lint --changed: no modified Python files")
            return 0
        else:
            paths = changed

    run = lint_tree(paths, rules=rules, flow=args.flow)
    findings = run.findings

    extra: "dict[str, object]" = {}
    fresh = findings
    floor_failed = False
    if args.flow:
        from repro.analysis.flow import (
            DEFAULT_BASELINE,
            RESOLUTION_FLOOR,
            load_baseline,
            new_findings,
            write_baseline,
        )

        baseline_path = args.baseline or DEFAULT_BASELINE
        if args.write_baseline:
            write_baseline(baseline_path, findings)
            print(
                f"wrote {len(findings)} finding(s) to baseline "
                f"{baseline_path}"
            )
            return 0
        try:
            baseline = load_baseline(baseline_path)
        except ValueError as exc:
            print(f"lint: {exc}", file=sys.stderr)
            return 2
        fresh = new_findings(findings, baseline)
        floor = (
            args.min_resolution
            if args.min_resolution is not None
            else RESOLUTION_FLOOR
        )
        rate = float(run.stats.get("rate", 1.0))
        floor_failed = rate < floor
        extra["callgraph"] = dict(run.stats, floor=floor)
        extra["baseline"] = {
            "path": str(baseline_path),
            "known": len(baseline),
            "new": len(fresh),
        }

    if args.format == "json":
        print(format_json(findings, rules=rules, extra=extra))
    else:
        print(format_text(findings))
        if args.flow:
            stats = run.stats
            print(
                f"call graph: {stats.get('calls')} calls, "
                f"{stats.get('resolved')} resolved, "
                f"{stats.get('unresolved')} unresolved, "
                f"{stats.get('external')} external; "
                f"resolution rate {stats.get('rate')} "
                f"(floor {extra['callgraph']['floor']})"  # type: ignore[index]
            )
            known = extra["baseline"]["known"]  # type: ignore[index]
            print(
                f"baseline: {known} known finding(s), "
                f"{len(fresh)} new"
            )
            if floor_failed:
                print(
                    "call-graph resolution rate fell below the floor",
                    file=sys.stderr,
                )
    if not args.strict:
        return 0
    return 1 if (fresh or floor_failed) else 0


def cmd_insert(args: argparse.Namespace) -> int:
    """Index pending dataset rows incrementally (`repro insert`)."""
    graph = load_graph(args.index)
    indexed = set(graph.real_ids())
    pending = [rid for rid in range(len(graph.dataset)) if rid not in indexed]
    if args.record_id is not None:
        pending = [args.record_id]
    if not pending:
        print("nothing to insert: every dataset row is already indexed")
        return 0
    with Timer() as timer:
        for rid in pending[: args.limit]:
            insert_record(graph, rid)
    count = min(len(pending), args.limit)
    save_graph(graph, args.index)
    print(f"inserted {count} records in {timer.elapsed:.2f}s")
    return 0


def cmd_delete(args: argparse.Namespace) -> int:
    """Remove one record from a persisted index (`repro delete`)."""
    graph = load_graph(args.index)
    with Timer() as timer:
        delete_record(graph, args.record_id)
    save_graph(graph, args.index)
    print(f"deleted record {args.record_id} in {1000 * timer.elapsed:.2f}ms")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    """Run the algorithm comparison matrix over a workload (`repro compare`)."""
    from repro.bench.compare import compare_algorithms, format_report
    from repro.data.queries import random_queries

    dataset = load_dataset(args.data)
    queries = random_queries(
        dataset.dims, args.queries, alpha=args.alpha, seed=args.seed
    )
    reports = compare_algorithms(
        dataset, queries, args.k, seed=args.seed, engine=args.engine
    )
    print(format_report(reports, args.k, len(queries)))
    return 0 if all(r.correct for r in reports) else 1


def cmd_serve(args: argparse.Namespace) -> int:
    """Operate a durable serving directory (`repro serve`).

    Modes (mutually exclusive):

    - ``--init --data data.npz``: build an index and initialize a fresh
      serving directory (checkpoint + CURRENT + empty WAL).
    - ``--probe``: recover the directory and print the health and
      readiness documents as JSON; exit 0 when ready, 1 otherwise.
    - ``--smoke N``: recover, then run N random mutations with
      concurrent reader threads — an end-to-end liveness exercise —
      finishing with a checkpoint and a clean close.
    """
    import json as json_module

    from repro.serve import ServingIndex

    if args.init:
        if not args.data:
            raise SystemExit("--init requires --data")
        dataset = load_dataset(args.data)
        if args.plain:
            graph = build_dominant_graph(dataset)
        else:
            graph = build_extended_graph(dataset, theta=args.theta, seed=args.seed)
        with Timer() as timer:
            index = ServingIndex.create(args.dir, graph, fsync=args.fsync)
        index.close()
        print(
            f"initialized serving directory {args.dir} in "
            f"{timer.elapsed:.2f}s ({len(dataset)} records, "
            f"fsync={args.fsync})"
        )
        return 0

    index = ServingIndex.open(
        args.dir, fsync=args.fsync, workers=args.workers
    )
    try:
        if args.probe:
            document = {
                "health": index.health(),
                "readiness": index.readiness(),
            }
            print(json_module.dumps(document, indent=2, sort_keys=True))
            return 0 if document["readiness"]["ready"] else 1

        # --smoke: random mutations under concurrent readers.
        import threading

        rng = np.random.default_rng(args.seed)
        dims = index.snapshot().compiled.values.shape[1]
        function = LinearFunction(rng.random(dims) + 0.05)
        stop = threading.Event()
        read_counts = [0] * 2

        def reader(slot: int) -> None:
            while not stop.is_set():
                index.query(function, k=10)
                read_counts[slot] += 1

        threads = [
            threading.Thread(target=reader, args=(i,), daemon=True)
            for i in range(len(read_counts))
        ]
        for thread in threads:
            thread.start()
        indexed = {int(r) for r in index.snapshot().alive_ids().tolist()}
        pending = [
            rid
            for rid in range(len(index._graph.dataset))
            if rid not in indexed
        ]
        mutations = 0
        with Timer() as timer:
            for _ in range(args.smoke):
                if pending and (rng.random() < 0.6 or len(indexed) < 4):
                    rid = pending.pop()
                    index.insert(rid)
                    indexed.add(rid)
                else:
                    rid = int(rng.choice(sorted(indexed)))
                    index.delete(rid)
                    indexed.discard(rid)
                    pending.append(rid)
                mutations += 1
        stop.set()
        for thread in threads:
            thread.join(timeout=10)
        fabric_note = ""
        if args.workers > 0:
            batch = index.query_batch([function] * 8, 10)
            fabric_note = (
                f", {len(batch)} fabric batch answers "
                f"({args.workers} workers)"
            )
        index.checkpoint()
        print(
            f"smoke: {mutations} mutations and {sum(read_counts)} "
            f"concurrent reads in {timer.elapsed:.2f}s "
            f"(final epoch {index.epoch}, fsync={args.fsync}{fabric_note})"
        )
        return 0
    finally:
        index.close()


EXPERIMENTS = {
    "fig5": lambda args: experiments.fig5_pseudo_records(args.kind),
    "fig6-construction": lambda args: experiments.fig6_construction(),
    "fig6-query": lambda args: experiments.fig6_query(),
    "fig7": lambda args: experiments.fig7_nonlayer(),
    "fig8-insert": lambda args: experiments.fig8_maintenance("insert"),
    "fig8-delete": lambda args: experiments.fig8_maintenance("delete"),
    "fig9-highdim": lambda args: experiments.fig9_highdim(),
    "fig9-worst": lambda args: experiments.fig9_worstcase(),
    "cost-model": lambda args: experiments.cost_model(),
}


def cmd_experiment(args: argparse.Namespace) -> int:
    """Print one paper experiment's table (`repro experiment`)."""
    result = EXPERIMENTS[args.name](args)
    print(format_table(result))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse tree for every subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Dominant Graph top-k indexing (ICDE 2008 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("generate", help="generate a synthetic dataset")
    p.add_argument("--kind", default="U",
                   help="U | G | R | A | worst | server (paper Section VI)")
    p.add_argument("--n", type=int, default=10_000)
    p.add_argument("--dims", type=int, default=3)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", required=True)
    p.set_defaults(run=cmd_generate)

    p = sub.add_parser("build", help="build a DG index over a dataset")
    p.add_argument("--data", required=True)
    p.add_argument("--out", required=True)
    p.add_argument("--theta", type=int, default=None,
                   help="pseudo-level threshold (default: page/record)")
    p.add_argument("--plain", action="store_true",
                   help="skip pseudo levels (plain DG)")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(run=cmd_build)

    p = sub.add_parser("query", help="answer linear top-k queries")
    p.add_argument("--index", required=True)
    p.add_argument("--weights", default=None,
                   help="comma-separated non-negative weights")
    p.add_argument("--batch", default=None, metavar="FILE",
                   help="answer many queries at once: FILE holds one "
                        "comma-separated weight vector per line "
                        "(# comments allowed); uses the layer-progressive "
                        "batch kernel")
    p.add_argument("--workers", type=int, default=0,
                   help="fan out across N worker processes sharing the "
                        "snapshot over shared memory (0 = in-process)")
    p.add_argument("--k", type=int, default=10)
    p.add_argument("--engine",
                   choices=["auto", "reference", "compiled", "naive"],
                   default="reference",
                   help="first serving tier to try: the reference Traveler, "
                        "the compiled flat-array kernel (identical answers, "
                        "faster), a plain scan, or auto (= compiled)")
    p.add_argument("--budget-ms", type=float, default=None,
                   help="wall-clock budget in milliseconds; exceeding it "
                        "aborts the query (exit status 3)")
    p.add_argument("--budget-records", type=int, default=None,
                   help="accessed-record budget (the paper's cost metric); "
                        "exceeding it aborts the query (exit status 3)")
    p.add_argument("--no-fallback", action="store_true",
                   help="fail immediately on an engine fault instead of "
                        "degrading to a simpler serving tier")
    p.add_argument("--explain", action="store_true",
                   help="print the per-layer traversal profile instead "
                        "(always uses the reference engine)")
    p.set_defaults(run=cmd_query)

    p = sub.add_parser(
        "doctor",
        help="diagnose (and repair) a saved index",
        description="Runtime checks: load an index, verify its structural "
                    "invariants, and cross-check the compiled engine "
                    "against the reference Traveler on probe queries.  "
                    "For the static (source-level) checks, see "
                    "'repro lint'.",
    )
    p.add_argument("--index", required=True)
    p.add_argument("--repair", action="store_true",
                   help="on corruption, rebuild from surviving data "
                        "and persist the repaired index")
    p.add_argument("--out", default=None,
                   help="where to write the repaired index "
                        "(default: overwrite --index atomically)")
    p.add_argument("--format", choices=["text", "json"], default="text",
                   help="output format (json emits one report object)")
    p.add_argument("--wal", default=None,
                   help="also scan this write-ahead log for torn tails "
                        "and mid-log corruption")
    p.add_argument("--store", default=None,
                   help="also audit this index-store directory: CURRENT "
                        "pointer health, orphaned generations, stray "
                        "temps, quarantine backlog, stamp drift")
    p.set_defaults(run=cmd_doctor)

    p = sub.add_parser(
        "chaos",
        help="run scripted fault schedules against a live serving index",
        description="The chaos control plane: boots a real ServingIndex "
                    "per scenario and seed, injects the scripted faults "
                    "(hung workers, SIGKILL storms, shm tampering, "
                    "failing fsync), and asserts the resilience "
                    "invariants — never a wrong answer, never a query "
                    "wedged past its deadline, bounded recovery time.",
    )
    p.add_argument("--scenario", action="append", default=None,
                   help="scenario to run (repeatable; default: all)")
    p.add_argument("--seeds", type=int, nargs="+", default=[0],
                   help="dataset/workload seeds to sweep (default: 0)")
    p.add_argument("--records", type=int, default=500,
                   help="dataset size per scenario index")
    p.add_argument("--rounds", type=int, default=6,
                   help="fault/query rounds per scenario")
    p.add_argument("--deadline-ms", type=float, default=1500.0,
                   help="end-to-end deadline applied to every query")
    p.add_argument("--reply-timeout", type=float, default=0.3,
                   help="seconds before a silent fabric worker is "
                        "presumed hung and replaced")
    p.add_argument("--out", default=None,
                   help="write the BENCH_resilience.json payload here")
    p.add_argument("--list", action="store_true",
                   help="list the registered scenarios and exit")
    p.set_defaults(run=cmd_chaos)

    p = sub.add_parser(
        "lint",
        help="run the project's static analyzer over the source tree",
        description="Static checks: AST rules for the contracts the "
                    "paper and the serving layer impose (snapshot "
                    "immutability, stats threading, typed errors, "
                    "determinism, writer discipline, dtype discipline, "
                    "guard coverage, public-API docs).  Suppress an "
                    "intentional exception with "
                    "'# repro: noqa[rule-id] -- reason'.  For the "
                    "runtime checks on an actual index, see "
                    "'repro doctor'.",
    )
    p.add_argument("paths", nargs="*", default=None,
                   help="files or directories to lint "
                        "(default: the installed repro package)")
    p.add_argument("--format", choices=["text", "json"], default="text",
                   help="output format (json includes the rule catalog)")
    p.add_argument("--strict", action="store_true",
                   help="exit 1 when any finding is reported (with "
                        "--flow: any finding beyond the baseline, or a "
                        "resolution rate below the floor)")
    p.add_argument("--select", default=None,
                   help="comma-separated rule ids to run (default: all)")
    p.add_argument("--flow", action="store_true",
                   help="build the whole-program call graph and run the "
                        "interprocedural passes (resource lifecycle, "
                        "exception escape, deadline propagation)")
    p.add_argument("--changed", action="store_true",
                   help="only report findings in files changed since "
                        "HEAD (full tree outside a git checkout)")
    p.add_argument("--baseline", default=None,
                   help="findings baseline for the --flow ratchet "
                        "(default: lint_baseline.json)")
    p.add_argument("--write-baseline", action="store_true",
                   help="record the current --flow findings as the new "
                        "baseline and exit")
    p.add_argument("--min-resolution", type=float, default=None,
                   help="minimum acceptable call-graph resolution rate "
                        "under --flow --strict (default: the pinned "
                        "floor)")
    p.set_defaults(run=cmd_lint)

    p = sub.add_parser("inspect", help="print index statistics")
    p.add_argument("--index", required=True)
    p.add_argument("--validate", action="store_true",
                   help="also run the full invariant check")
    p.set_defaults(run=cmd_inspect)

    p = sub.add_parser("insert", help="index not-yet-indexed dataset rows")
    p.add_argument("--index", required=True)
    p.add_argument("--record-id", type=int, default=None)
    p.add_argument("--limit", type=int, default=1_000_000)
    p.set_defaults(run=cmd_insert)

    p = sub.add_parser("delete", help="remove one record from the index")
    p.add_argument("--index", required=True)
    p.add_argument("--record-id", type=int, required=True)
    p.set_defaults(run=cmd_delete)

    p = sub.add_parser("compare", help="compare all algorithms on a workload")
    p.add_argument("--data", required=True)
    p.add_argument("--k", type=int, default=10)
    p.add_argument("--queries", type=int, default=20)
    p.add_argument("--alpha", type=float, default=1.0,
                   help="Dirichlet concentration of the query workload")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--engine", choices=["reference", "compiled"],
                   default="reference",
                   help="engine behind the DG entry of the comparison")
    p.set_defaults(run=cmd_compare)

    p = sub.add_parser(
        "serve", help="operate a durable WAL-backed serving directory"
    )
    p.add_argument("--dir", required=True,
                   help="serving directory (CURRENT + checkpoint + WAL)")
    mode = p.add_mutually_exclusive_group(required=True)
    mode.add_argument("--init", action="store_true",
                      help="build an index over --data and initialize "
                           "a fresh serving directory")
    mode.add_argument("--probe", action="store_true",
                      help="recover and print health + readiness JSON "
                           "(exit 0 when ready, 1 otherwise)")
    mode.add_argument("--smoke", type=int, metavar="N",
                      help="recover, run N mutations under concurrent "
                           "readers, checkpoint, close")
    p.add_argument("--data", default=None,
                   help="dataset archive for --init")
    p.add_argument("--plain", action="store_true",
                   help="--init with a plain DG (skip pseudo levels)")
    p.add_argument("--theta", type=int, default=None,
                   help="--init pseudo-level threshold")
    p.add_argument("--fsync", choices=["always", "batch", "never"],
                   default="always",
                   help="WAL durability policy (see docs/serving.md)")
    p.add_argument("--workers", type=int, default=0,
                   help="attach an N-process query fabric over "
                        "shared-memory snapshots (0 = in-process only)")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(run=cmd_serve)

    p = sub.add_parser("experiment", help="run a paper experiment")
    p.add_argument("--name", choices=sorted(EXPERIMENTS), required=True)
    p.add_argument("--kind", default="U")
    p.set_defaults(run=cmd_experiment)
    return parser


def main(argv=None) -> int:
    """CLI entry point (``python -m repro ...``)."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.run(args)


if __name__ == "__main__":
    sys.exit(main())
