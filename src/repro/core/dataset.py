"""The record set ``D``: an immutable, numpy-backed table of records.

The paper's data model (Table I) is a record set ``D`` of cardinality |D|
where every record has ``m`` numeric attributes and a top-k query prefers
*larger* attribute values (Definition 2.2 uses ``>=`` / ``>``, the mirror
image of the skyline literature's ``<=`` / ``<``; the two are equivalent).

:class:`Dataset` wraps an ``(n, m)`` float array plus optional attribute
names and record labels.  Records are identified by their row index
(0..n-1); every index structure in the repository speaks record ids, never
raw vectors, so the dataset is the single source of truth for values.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np


class Dataset:
    """An immutable set of ``m``-dimensional records, preferring larger values.

    Parameters
    ----------
    values:
        Array-like of shape ``(n, m)``.  Copied and frozen; mutating the
        source afterwards does not affect the dataset.
    attribute_names:
        Optional names for the ``m`` attributes (defaults to ``x1..xm``).
    labels:
        Optional per-record labels (e.g. the TIDs of the paper's running
        example).  Purely cosmetic; algorithms use row indices.

    Examples
    --------
    >>> d = Dataset([[1.0, 2.0], [3.0, 0.5]])
    >>> len(d), d.dims
    (2, 2)
    >>> d.vector(1)
    array([3. , 0.5])
    """

    def __init__(
        self,
        values: Sequence[Sequence[float]] | np.ndarray,
        attribute_names: Sequence[str] | None = None,
        labels: Sequence[object] | None = None,
    ) -> None:
        # np.array (not asarray): always copy, so freezing the copy below
        # can never mutate the caller's array flags.
        array = np.array(values, dtype=np.float64)
        if array.ndim != 2:
            raise ValueError(
                f"Dataset values must be a 2-d array of shape (n, m); got ndim={array.ndim}"
            )
        if array.shape[0] == 0:
            raise ValueError("Dataset must contain at least one record")
        if array.shape[1] == 0:
            raise ValueError("Dataset records must have at least one attribute")
        if not np.all(np.isfinite(array)):
            raise ValueError("Dataset values must be finite (no NaN/inf)")
        array.setflags(write=False)
        self._values = array

        n, m = array.shape
        if attribute_names is None:
            attribute_names = tuple(f"x{i + 1}" for i in range(m))
        else:
            attribute_names = tuple(attribute_names)
            if len(attribute_names) != m:
                raise ValueError(
                    f"Expected {m} attribute names, got {len(attribute_names)}"
                )
        self._attribute_names = attribute_names

        if labels is not None:
            labels = tuple(labels)
            if len(labels) != n:
                raise ValueError(f"Expected {n} labels, got {len(labels)}")
        self._labels = labels

    @classmethod
    def clean(
        cls,
        values: Sequence[Sequence[float]] | np.ndarray,
        attribute_names: Sequence[str] | None = None,
        labels: Sequence[object] | None = None,
    ) -> tuple:
        """Build a dataset from possibly-dirty values, quarantining bad rows.

        Where the constructor *rejects* any NaN/inf, ``clean`` drops the
        offending rows and reports them, so a pipeline ingesting untrusted
        data can proceed on the finite majority.  Returns
        ``(dataset, quarantined)`` where ``quarantined`` lists the dropped
        source row indices (indices into ``values``, not into the surviving
        dataset).  Raises :class:`ValueError` when no finite row remains.

        Examples
        --------
        >>> ds, bad = Dataset.clean([[1.0, 2.0], [float("nan"), 0.0]])
        >>> len(ds), bad
        (1, [1])
        """
        array = np.array(values, dtype=np.float64)
        if array.ndim != 2:
            raise ValueError(
                f"Dataset values must be a 2-d array of shape (n, m); got ndim={array.ndim}"
            )
        finite = np.all(np.isfinite(array), axis=1)
        quarantined = [int(i) for i in np.flatnonzero(~finite)]
        kept = array[finite]
        if kept.shape[0] == 0:
            raise ValueError("no finite records remain after quarantine")
        kept_labels = None
        if labels is not None:
            labels = tuple(labels)
            if len(labels) != array.shape[0]:
                raise ValueError(f"Expected {array.shape[0]} labels, got {len(labels)}")
            kept_labels = tuple(lab for lab, ok in zip(labels, finite) if ok)
        dataset = cls(kept, attribute_names=attribute_names, labels=kept_labels)
        return dataset, quarantined

    # ------------------------------------------------------------------
    # Basic protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._values.shape[0]

    def __iter__(self) -> Iterator[np.ndarray]:
        return iter(self._values)

    def __repr__(self) -> str:
        n, m = self._values.shape
        return f"Dataset(n={n}, m={m}, attributes={list(self._attribute_names)})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Dataset):
            return NotImplemented
        return (
            self._values.shape == other._values.shape
            and bool(np.array_equal(self._values, other._values))
        )

    def __hash__(self) -> int:  # immutable, so hashable by content summary
        return hash((self._values.shape, self._values.tobytes()))

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def values(self) -> np.ndarray:
        """The read-only ``(n, m)`` value matrix."""
        return self._values

    @property
    def dims(self) -> int:
        """Number of attributes ``m``."""
        return self._values.shape[1]

    @property
    def attribute_names(self) -> tuple:
        """Names of the ``m`` attributes."""
        return self._attribute_names

    @property
    def labels(self) -> tuple | None:
        """Optional per-record labels (``None`` when not supplied)."""
        return self._labels

    def label(self, record_id: int) -> object:
        """Human-facing label of a record (falls back to its row index)."""
        if self._labels is None:
            return record_id
        return self._labels[record_id]

    def vector(self, record_id: int) -> np.ndarray:
        """The attribute vector of one record (read-only view)."""
        return self._values[record_id]

    def take(self, record_ids: Iterable[int]) -> np.ndarray:
        """Value matrix restricted to the given record ids, in order."""
        if isinstance(record_ids, np.ndarray):
            ids = record_ids.astype(np.intp, copy=False)
        else:
            ids = np.fromiter(record_ids, dtype=np.intp)
        return self._values[ids]

    def project(self, dimensions: Sequence[int]) -> "Dataset":
        """A new dataset restricted to a subset of dimensions.

        Used by the N-Way Traveler (Section IV-C), which builds one DG per
        dimension set.  Record ids are preserved (rows are not reordered).
        """
        dims = list(dimensions)
        if not dims:
            raise ValueError("project() needs at least one dimension")
        if any(d < 0 or d >= self.dims for d in dims):
            raise ValueError(f"dimension out of range for m={self.dims}: {dims}")
        names = tuple(self._attribute_names[d] for d in dims)
        return Dataset(self._values[:, dims], attribute_names=names, labels=self._labels)

    def with_appended(self, rows: np.ndarray) -> "Dataset":
        """A new dataset with extra records appended (ids continue from n).

        Convenience for the maintenance experiments, where fresh records are
        drawn from a generator and inserted one by one.
        """
        rows = np.atleast_2d(np.asarray(rows, dtype=np.float64))
        if rows.shape[1] != self.dims:
            raise ValueError(
                f"appended rows have {rows.shape[1]} attributes, dataset has {self.dims}"
            )
        labels = None
        if self._labels is not None:
            labels = self._labels + tuple(range(len(self), len(self) + len(rows)))
        return Dataset(
            np.vstack([self._values, rows]),
            attribute_names=self._attribute_names,
            labels=labels,
        )
