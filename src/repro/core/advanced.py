"""Advanced Traveler: Basic Traveler over the Extended DG (Algorithm 2).

The only differences from Algorithm 1 — exactly as the paper states — are
that pseudo records do not count toward ``k``:

- the loop runs "while the number of *real* records in RS < k", and
- the candidate-list truncation keeps the best ``k - n`` *real* candidates
  (pseudo candidates are always kept, since discarding one could lock an
  entire subtree whose real records are still needed).

Pseudo records still pass through CL and RS — they are scored like anyone
else ("accessed pseudo records also count" toward the cost metric in
Experiment 1) and their membership in RS is what unlocks their children.

Tie contract: answers follow the global ``(-score, id)`` ordering, same
as :mod:`repro.core.traveler` (see its module docstring for why the
literal algorithm does not guarantee this and how boundary-tie popping,
tie-inclusive truncation and the final sort restore it).  One extension
is pseudo-specific: a pseudo record's vector can *equal* a descendant's
(a one-member pseudo segment), so even under a strictly monotone
function a boundary-tied pseudo pop must keep unlocking — its children
may tie the k-th score exactly.
"""

from __future__ import annotations

import bisect

from repro.core.functions import ScoringFunction, WherePredicate
from repro.core.graph import DominantGraph
from repro.core.result import TopKResult
from repro.metrics.counters import AccessCounter


class _LazyCandidateList:
    """Algorithm 2's candidate list with lazy deletion.

    Two sorted ``(-score, record_id)`` lists — answerable candidates and
    sheltered ones (pseudo / filtered-out records, which truncation must
    never drop) — each behind a head counter.  ``pop_best`` takes the
    smaller head and advances its counter instead of ``list.pop(0)``
    (O(n) memmove), and ``truncate`` deletes the answerable tail in place
    instead of rebuilding the whole list by re-testing every entry; both
    made the reference engine accidentally quadratic in CL size.  Dead
    prefixes are compacted once they dominate their list.

    Pop order and truncation semantics are exactly the original merged
    list's: pops follow global ``(-score, id)`` order, and truncation
    keeps the best ``keep`` answerable candidates plus every sheltered
    one.
    """

    def __init__(self) -> None:
        self._answerable: list = []
        self._sheltered: list = []
        self._a_head = 0
        self._s_head = 0

    def __len__(self) -> int:
        return (
            len(self._answerable) - self._a_head
            + len(self._sheltered) - self._s_head
        )

    def insert(self, neg_score: float, record_id: int, answerable: bool) -> None:
        """File a scored record under the answerable or sheltered list."""
        if answerable:
            bisect.insort(
                self._answerable, (neg_score, record_id), lo=self._a_head
            )
        else:
            bisect.insort(
                self._sheltered, (neg_score, record_id), lo=self._s_head
            )

    def pop_best(self) -> tuple:
        """Remove the best live candidate; return ``(-score, id, answerable)``."""
        a = self._answerable[self._a_head] if self._a_head < len(self._answerable) else None
        s = self._sheltered[self._s_head] if self._s_head < len(self._sheltered) else None
        if s is None or (a is not None and a < s):
            self._a_head += 1
            if self._a_head > 64 and self._a_head * 2 >= len(self._answerable):
                del self._answerable[: self._a_head]
                self._a_head = 0
            return a[0], a[1], True
        self._s_head += 1
        if self._s_head > 64 and self._s_head * 2 >= len(self._sheltered):
            del self._sheltered[: self._s_head]
            self._s_head = 0
        return s[0], s[1], False

    def best_neg(self) -> float:
        """The ``-score`` key of the best live candidate (must be non-empty)."""
        a = self._answerable[self._a_head] if self._a_head < len(self._answerable) else None
        s = self._sheltered[self._s_head] if self._s_head < len(self._sheltered) else None
        if s is None:
            assert a is not None
            return a[0]
        if a is None:
            return s[0]
        return min(a, s)[0]

    def truncate(self, keep_answers: int) -> None:
        """Drop all but the best ``keep_answers`` answerable candidates.

        Tie-inclusive, like :meth:`_CandidateList.truncate`: candidates
        tied with the last kept one stay, so the final ``(-score, id)``
        tie-break can choose among them.
        """
        if keep_answers <= 0:
            del self._answerable[self._a_head:]
            return
        limit = self._a_head + keep_answers
        if limit >= len(self._answerable):
            return
        anchor = self._answerable[limit - 1][0]
        while limit < len(self._answerable) and self._answerable[limit][0] == anchor:
            limit += 1
        del self._answerable[limit:]


class AdvancedTraveler:
    """Algorithm 2 over an Extended (or plain) Dominant Graph.

    Examples
    --------
    >>> from repro.core.dataset import Dataset
    >>> from repro.core.builder import build_extended_graph
    >>> from repro.core.functions import LinearFunction
    >>> ds = Dataset([[4.0, 1.0], [1.0, 4.0], [0.5, 0.5]])
    >>> result = AdvancedTraveler(build_extended_graph(ds, theta=2)).top_k(
    ...     LinearFunction([0.5, 0.5]), k=2)
    >>> sorted(result.ids)
    [0, 1]
    """

    name = "advanced-traveler"

    def __init__(self, graph: DominantGraph) -> None:
        self._graph = graph

    @property
    def graph(self) -> DominantGraph:
        """The underlying index."""
        return self._graph

    def top_k(
        self,
        function: ScoringFunction,
        k: int,
        where: WherePredicate | None = None,
        *,
        stats: AccessCounter | None = None,
    ) -> TopKResult:
        """Answer a top-k query; only real records are reported/counted.

        Parameters
        ----------
        function:
            Any aggregate monotone scoring function.
        k:
            Number of answers.
        where:
            Optional selection predicate ``vector -> bool``.  Records
            failing it are traversed like pseudo records — they keep
            unlocking their subtrees (a non-matching record can still
            dominate matching ones) but are neither reported nor counted
            toward ``k``.  This is the constrained ranking(+selection)
            query RankCube motivates, answered from the unmodified DG.
        stats:
            Optional caller-supplied access counter; the query guard
            passes a budget-enforcing subclass here.
        """
        if k <= 0:
            raise ValueError("k must be positive")
        graph = self._graph
        stats = stats if stats is not None else AccessCounter()
        computed: set = set()
        # Pseudo and filtered-out records are sheltered from truncation:
        # discarding one could lock a subtree whose answerable records are
        # still needed.
        candidates = _LazyCandidateList()

        def is_answer(rid: int) -> bool:
            if graph.is_pseudo(rid):
                return False
            return where is None or bool(where(graph.vector(rid)))

        def score_into_cl(rid: int) -> None:
            pseudo = graph.is_pseudo(rid)
            score = function(graph.vector(rid))
            stats.count_computed(rid, pseudo=pseudo)
            computed.add(rid)
            candidates.insert(-score, rid, is_answer(rid))

        for rid in sorted(graph.layer(0)):
            score_into_cl(rid)
        candidates.truncate(k)

        strict = bool(getattr(function, "strictly_monotone", False))
        answers: list = []
        in_result: set = set()
        found = 0
        kth_neg: float | None = None
        while len(candidates):
            # After the k-th answerable answer, only candidates tying the
            # k-th score can matter; pops are non-increasing, so the first
            # strictly-worse peek ends the query.
            if kth_neg is not None and candidates.best_neg() > kth_neg:
                break
            neg_score, rid, answerable = candidates.pop_best()
            in_result.add(rid)
            if answerable:
                answers.append((-neg_score, rid))
                found += 1
                if kth_neg is None and found == k:
                    kth_neg = neg_score
            # Unlocking continues past the k-th answer for functions with
            # dominated ties, and always through boundary-tied *pseudo*
            # pops: a pseudo vector can equal a descendant's, so its
            # children may tie the k-th score even under a strict function.
            if kth_neg is None or not strict or graph.is_pseudo(rid):
                for child in sorted(graph.children_of(rid)):
                    if child in computed:
                        continue
                    if any(parent not in in_result for parent in graph.parents_of(child)):
                        continue
                    score_into_cl(child)
            if kth_neg is None:
                candidates.truncate(k - found)

        answers.sort(key=lambda pair: (-pair[0], pair[1]))
        return TopKResult.from_pairs(answers[:k], stats, algorithm=self.name)
