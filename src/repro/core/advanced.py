"""Advanced Traveler: Basic Traveler over the Extended DG (Algorithm 2).

The only differences from Algorithm 1 — exactly as the paper states — are
that pseudo records do not count toward ``k``:

- the loop runs "while the number of *real* records in RS < k", and
- the candidate-list truncation keeps the best ``k - n`` *real* candidates
  (pseudo candidates are always kept, since discarding one could lock an
  entire subtree whose real records are still needed).

Pseudo records still pass through CL and RS — they are scored like anyone
else ("accessed pseudo records also count" toward the cost metric in
Experiment 1) and their membership in RS is what unlocks their children.

On a plain DG (no pseudo records) the Advanced Traveler degenerates to the
Basic Traveler, so it is the algorithm benchmarks call "DG".
"""

from __future__ import annotations

import bisect

from repro.core.functions import ScoringFunction
from repro.core.graph import DominantGraph
from repro.core.result import TopKResult
from repro.metrics.counters import AccessCounter


class AdvancedTraveler:
    """Algorithm 2 over an Extended (or plain) Dominant Graph.

    Examples
    --------
    >>> from repro.core.dataset import Dataset
    >>> from repro.core.builder import build_extended_graph
    >>> from repro.core.functions import LinearFunction
    >>> ds = Dataset([[4.0, 1.0], [1.0, 4.0], [0.5, 0.5]])
    >>> result = AdvancedTraveler(build_extended_graph(ds, theta=2)).top_k(
    ...     LinearFunction([0.5, 0.5]), k=2)
    >>> sorted(result.ids)
    [0, 1]
    """

    name = "advanced-traveler"

    def __init__(self, graph: DominantGraph) -> None:
        self._graph = graph

    @property
    def graph(self) -> DominantGraph:
        """The underlying index."""
        return self._graph

    def top_k(
        self,
        function: ScoringFunction,
        k: int,
        where=None,
    ) -> TopKResult:
        """Answer a top-k query; only real records are reported/counted.

        Parameters
        ----------
        function:
            Any aggregate monotone scoring function.
        k:
            Number of answers.
        where:
            Optional selection predicate ``vector -> bool``.  Records
            failing it are traversed like pseudo records — they keep
            unlocking their subtrees (a non-matching record can still
            dominate matching ones) but are neither reported nor counted
            toward ``k``.  This is the constrained ranking(+selection)
            query RankCube motivates, answered from the unmodified DG.
        """
        if k <= 0:
            raise ValueError("k must be positive")
        graph = self._graph
        stats = AccessCounter()
        computed: set = set()
        # CL holds (-score, record_id); index 0 is the best candidate.
        candidates: list = []

        def is_answer(rid: int) -> bool:
            if graph.is_pseudo(rid):
                return False
            return where is None or bool(where(graph.vector(rid)))

        answerable: dict = {}

        def score_into_cl(rid: int) -> None:
            pseudo = graph.is_pseudo(rid)
            score = function(graph.vector(rid))
            stats.count_computed(rid, pseudo=pseudo)
            computed.add(rid)
            answerable[rid] = is_answer(rid)
            bisect.insort(candidates, (-score, rid))

        def truncate(keep_answers: int) -> None:
            """Drop all but the best ``keep_answers`` answerable candidates.

            Pseudo and filtered-out records are always kept: discarding
            one could lock a subtree whose answerable records are needed.
            """
            kept_answers = 0
            kept: list = []
            for entry in candidates:
                if not answerable[entry[1]]:
                    kept.append(entry)
                elif kept_answers < keep_answers:
                    kept.append(entry)
                    kept_answers += 1
            candidates[:] = kept

        for rid in sorted(graph.layer(0)):
            score_into_cl(rid)
        truncate(k)

        answers: list = []
        in_result: set = set()
        found = 0
        while found < k and candidates:
            neg_score, rid = candidates.pop(0)
            in_result.add(rid)
            if answerable[rid]:
                answers.append((-neg_score, rid))
                found += 1
                if found == k:
                    break
            for child in sorted(graph.children_of(rid)):
                if child in computed:
                    continue
                if any(parent not in in_result for parent in graph.parents_of(child)):
                    continue
                score_into_cl(child)
            truncate(k - found)

        return TopKResult.from_pairs(answers, stats, algorithm=self.name)
