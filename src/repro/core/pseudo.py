"""Pseudo records and the Extended DG (paper Section IV-A).

When the first DG layer is large, the Basic Traveler must score every one
of its records before producing even the top-1 answer.  The paper's fix is
to cluster the oversized layer with K-Means and introduce one *pseudo
record* per cluster — an artificial parent that dominates every cluster
member — then stack further pseudo levels until the topmost level fits a
disk page: θ = page_bytes / record_bytes.

Implementation notes (these are the paper's rules made precise):

- The pseudo parent of a cluster is the coordinate-wise maximum of its
  members, bumped by a tiny ε so that it *strictly* dominates each member
  (the paper's Fig. 4 parents, e.g. P1 = (81, 61), sit strictly above
  their clusters).  Monotonicity then guarantees F(pseudo) > F(member),
  which is what keeps the Traveler's best-first order correct.
- "We remove some pseudo records that are dominated by other introduced
  pseudo records": dominated (or duplicate) pseudo parents are dropped and
  their children are covered by the dominating survivor, so no pseudo
  level contains an internal dominance pair.
- Parent-children edges across a pseudo boundary follow *cluster
  membership* ("we build the parent-children relationship between the
  pseudo records in L-1 and the records in the 1st layer", i.e. each
  pseudo parents its own cluster) — NOT every dominance pair.  This is
  what makes pseudo records effective: a record is unlocked as soon as its
  cluster parent pops, so clusters whose upper bound falls below the
  running k-th score are never expanded.  It is also sound: a pseudo edge
  still implies dominance, so the Traveler's best-first invariant (the
  candidate list always upper-bounds everything unseen) is preserved; the
  all-dominators completeness that Theorem 3.1 needs applies to real-real
  boundaries only.
- Levels are stacked "until L_n.size < θ" — we additionally stop if a
  level stops shrinking, which can happen on pathological inputs.
"""

from __future__ import annotations

import numpy as np

from repro.core.dominance import dominators_of
from repro.core.graph import DominantGraph
from repro.cluster.kmeans import kmeans

#: Relative bump applied to a cluster maximum so the pseudo record strictly
#: dominates every member.
_EPSILON = 1e-9

#: Default disk-page size used by :func:`default_theta` (bytes).
DEFAULT_PAGE_BYTES = 4096


def default_theta(dims: int, page_bytes: int = DEFAULT_PAGE_BYTES) -> int:
    """θ = page / record, the paper's threshold for introducing pseudo levels.

    A record is modelled as ``m`` 8-byte attributes plus an 8-byte id, the
    layout a straightforward on-disk representation would use.

    >>> default_theta(3)
    128
    """
    record_bytes = 8 * (dims + 1)
    return max(2, page_bytes // record_bytes)


def pseudo_parent_vector(members: np.ndarray) -> np.ndarray:
    """Strictly dominating parent of a cluster: elementwise max plus ε."""
    top = members.max(axis=0)
    return top + _EPSILON * (1.0 + np.abs(top))


def _merge_dominated(vectors: np.ndarray) -> tuple:
    """Partition pseudo parents into survivors and merged victims.

    Returns ``(kept, owner)`` where ``kept`` are indices of vectors not
    dominated by (and not duplicating) another, and ``owner[i]`` maps every
    index to the kept index that covers it — itself for survivors, a
    dominating/duplicate survivor for victims (whose children it inherits).
    """
    n = vectors.shape[0]
    kept: list = []
    owner = np.arange(n, dtype=np.intp)
    order = np.argsort(-vectors.sum(axis=1), kind="stable")
    for i in order:
        duplicate_of = next(
            (j for j in kept if np.array_equal(vectors[i], vectors[j])), None
        )
        if duplicate_of is not None:
            owner[i] = duplicate_of
            continue
        dominators = [
            j for j in kept if dominators_of(vectors[i], vectors[j][None, :]).any()
        ]
        if dominators:
            owner[i] = dominators[0]
            continue
        kept.append(int(i))
    # Visiting in descending coordinate-sum order guarantees a victim's
    # dominator was already kept, so `owner` always points at a survivor.
    return np.asarray(sorted(kept), dtype=np.intp), owner


def extend_with_pseudo_levels(
    graph: DominantGraph,
    theta: int | None = None,
    seed: int = 0,
    max_levels: int = 32,
) -> int:
    """Stack pseudo levels on top of ``graph`` until the top layer fits θ.

    Mutates the graph in place and returns the number of pseudo levels
    added (0 when the first layer already fits).

    Parameters
    ----------
    graph:
        A plain DG (or one that already has pseudo levels; new levels stack
        above the current top layer).
    theta:
        Page threshold; defaults to :func:`default_theta` for the dataset's
        dimensionality.
    seed:
        K-Means seed, for reproducible level structure.
    max_levels:
        Safety cap on stacked levels.
    """
    if theta is None:
        theta = default_theta(graph.dataset.dims)
    if theta < 2:
        raise ValueError("theta must be at least 2")

    added = 0
    for _ in range(max_levels):
        top_ids = sorted(graph.layer(0))
        if len(top_ids) <= theta:
            break
        top_vectors = np.vstack([graph.vector(rid) for rid in top_ids])
        n_clusters = int(np.ceil(len(top_ids) / theta))
        if n_clusters >= len(top_ids):
            break  # cannot shrink further; give up rather than loop
        clustering = kmeans(top_vectors, n_clusters, seed=seed + added)

        parent_vectors = np.vstack(
            [
                pseudo_parent_vector(top_vectors[clustering.members(c)])
                for c in range(clustering.n_clusters)
            ]
        )
        kept, owner = _merge_dominated(parent_vectors)
        kept_position = {int(c): pos for pos, c in enumerate(kept)}

        pseudo_ids = [graph.add_pseudo_record(parent_vectors[c]) for c in kept]
        graph.prepend_layer(pseudo_ids)

        # Cluster-membership wiring: each record is parented by the pseudo
        # of its cluster (or the survivor that absorbed that cluster).
        for row, cluster in enumerate(clustering.assignments):
            parent = pseudo_ids[kept_position[int(owner[cluster])]]
            graph.add_edge(parent, top_ids[row])
        added += 1
    return added


def count_pseudo_levels(graph: DominantGraph) -> int:
    """Number of leading layers that consist entirely of pseudo records.

    This is the offset at which real layers start — maintenance needs it to
    know where a record with no real dominator belongs.
    """
    levels = 0
    for index in range(graph.num_layers):
        layer = graph.layer(index)
        if layer and all(graph.is_pseudo(rid) for rid in layer):
            levels += 1
        else:
            break
    return levels
