"""Optional native (numba) build of the fast lane's fused chunk kernel.

The float32 fast lane in :mod:`repro.core.compiled` spends its scan time
in one operation: score a chunk of the value matrix against the active
queries' weight rows and take per-query maxima in the same pass.  The
pure-numpy version (one ``sgemm`` plus a column-max reduction) is the
always-on parity oracle; this module provides a drop-in native build of
that fused loop for deployments that install the ``[native]`` extra
(``pip install repro[native]``).

Activation is explicit and safe by default:

- ``REPRO_NATIVE=1`` requests the native kernel.  Without the flag the
  numpy oracle runs even when numba is installed.
- When the flag is set but numba is unavailable (or fails to compile),
  the engine emits a single :class:`RuntimeWarning` and falls back to
  the numpy oracle — same answers, no native speed.

Exactness is unaffected by construction: the native loop only produces
the *provisional* float32 scores, whose every use is covered by the
error margin and exact float64 boundary re-check documented in
:mod:`repro.core.compiled`.  The margin bound holds for any summation
order, so ``fastmath`` reassociation and FMA contraction are admissible
here.  The parity sweep in CI runs the full test suite under
``REPRO_NATIVE=1`` to hold the native lane to the bit-identical answer
contract.
"""

from __future__ import annotations

import os
import warnings
from typing import Any, Callable, Optional, Tuple

import numpy as np

#: Environment variable: set to ``"1"`` to request the native kernel.
NATIVE_ENV = "REPRO_NATIVE"

_KERNEL: "Optional[NativeChunkKernel]" = None
_UNAVAILABLE = False
_WARNED = False


def requested() -> bool:
    """Whether the current environment asks for the native kernel."""
    return os.environ.get(NATIVE_ENV, "") == "1"


def available() -> bool:
    """Whether numba can be imported (without compiling anything)."""
    try:
        import numba  # noqa: F401
    except Exception:  # repro: noqa[typed-errors] -- a probe of an optional dependency must absorb whatever a broken install raises
        return False
    return True


class NativeChunkKernel:
    """Fused float32 score+max over one chunk, compiled with numba."""

    name = "numba"

    def __init__(self, compiled_loop: "Callable[..., Any]") -> None:
        self._loop = compiled_loop

    def score_chunk(
        self,
        values_f32: np.ndarray,
        weights_f32: np.ndarray,
        lo: int,
        hi: int,
    ) -> "Tuple[np.ndarray, np.ndarray]":
        """Return the chunk's ``(rows, queries)`` scores and column maxima."""
        return self._loop(values_f32, weights_f32, lo, hi)  # type: ignore[no-any-return]


def _build() -> "Optional[NativeChunkKernel]":
    """Compile the fused loop; ``None`` (plus one warning) on any failure."""
    global _UNAVAILABLE, _WARNED
    try:
        import numba

        @numba.njit(cache=False, fastmath=True)  # type: ignore[misc]
        def fused_chunk(values, weights, lo, hi):  # type: ignore[no-untyped-def]
            rows = hi - lo
            queries = weights.shape[0]
            dims = weights.shape[1]
            scores = np.empty((rows, queries), dtype=np.float32)
            maxima = np.full(queries, -np.inf, dtype=np.float32)
            for r in range(rows):
                base = lo + r
                for q in range(queries):
                    acc = np.float32(0.0)
                    for t in range(dims):
                        acc += values[base, t] * weights[q, t]
                    scores[r, q] = acc
                    if acc > maxima[q]:
                        maxima[q] = acc
            return scores, maxima

        # Force compilation now so a broken toolchain degrades here, once,
        # instead of inside the first query.
        probe_values = np.zeros((1, 1), dtype=np.float32)
        probe_weights = np.zeros((1, 1), dtype=np.float32)
        fused_chunk(probe_values, probe_weights, 0, 1)
        return NativeChunkKernel(fused_chunk)
    except Exception as exc:  # repro: noqa[typed-errors] -- any import/compile failure of the optional kernel must degrade to the numpy oracle, not crash queries
        _UNAVAILABLE = True
        if not _WARNED:
            _WARNED = True
            warnings.warn(
                f"{NATIVE_ENV}=1 requested the native kernel but it is "
                f"unavailable ({type(exc).__name__}: {exc}); falling back "
                f"to the pure-numpy fast lane. Install the [native] extra "
                f"(pip install repro[native]) to enable it.",
                RuntimeWarning,
                stacklevel=3,
            )
        return None


def kernel() -> "Optional[NativeChunkKernel]":
    """The active native kernel, or ``None`` for the numpy oracle.

    Reads ``REPRO_NATIVE`` on every call (cheap: one dict lookup) so
    tests and operators can toggle the flag without re-importing; the
    compiled loop itself is built once per process.
    """
    global _KERNEL
    if not requested() or _UNAVAILABLE:
        return None
    if _KERNEL is None:
        _KERNEL = _build()
    return _KERNEL


def reset() -> None:
    """Forget the built kernel and the unavailability latch (test hook)."""
    global _KERNEL, _UNAVAILABLE, _WARNED
    _KERNEL = None
    _UNAVAILABLE = False
    _WARNED = False


def status() -> "dict[str, bool]":
    """Introspection for the CLI / benchmarks: flag, import, active."""
    return {
        "requested": requested(),
        "importable": available(),
        "active": kernel() is not None,
    }
