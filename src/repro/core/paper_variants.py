"""Literal transcription of the paper's Algorithm 4 — and its vindication.

On first reading, lines 8-14 of Algorithm 4 ("all descendant records of
C_i (including C_i) are collected to form the set S ... each record O in
S is degraded into its next layer") look too aggressive: why should a
descendant move when its longest dominating chain avoids the insertion
point entirely?  Building this faithful transcription settled the
question in the paper's favour.  The unconditional degrade is correct
because of two facts the pseudocode leaves implicit:

1. **S is self-forcing.**  Every member of S is reached by a DG path
   from some C_i, so it has an S-parent exactly one layer above it; that
   parent degrades by one and lands *on* the member's old layer, forcing
   the member down.  Induction from C_i (which the new record forces
   down directly) makes every degrade exact.
2. **Nothing outside S needs to move.**  A record only moves when a
   dominator lands on its layer; any such dominator moved from one layer
   above, making the record its DG child — hence a member of S.  Records
   the new record dominates in *deeper* layers already satisfy the layer
   constraint and correctly stay put.

``tests/test_paper_variants.py`` asserts the transcription equals a
from-scratch rebuild on every workload family, including the scenario
that motivated the suspicion.  Production code still uses
:func:`repro.core.maintenance.insert_record` — an equivalent formulation
that avoids the O(|S|) per-record DFS and edge churn — but the two are
tested to agree.
"""

from __future__ import annotations

import numpy as np

from repro.core.dominance import dominated_by, dominates, dominators_of
from repro.core.graph import DominantGraph


def paper_insert_record(graph: DominantGraph, record_id: int) -> int:
    """Algorithm 4 as published (plain DGs only); returns R's layer.

    Lines 1-6: locate the level — R joins layer n+1 where n is the length
    of the longest all-dominating DFS path from the first layer (0 when
    no first-layer record dominates R).  Lines 8-14: records R dominates
    in layer n+1, plus all their DG descendants, each degrade one layer.
    Lines 15-16: wire R's parent and child edges.
    """
    if graph.num_pseudo:
        raise ValueError("the paper's Algorithm 4 is stated for plain DGs")
    if record_id in graph:
        raise ValueError(f"record {record_id} is already indexed")
    vector = graph.dataset.vector(record_id)

    # Lines 1-6: longest path of dominators, via DFS from the first layer.
    def longest_dominating_path(rid: int) -> int:
        best = 1
        for child in sorted(graph.children_of(rid)):
            if dominates(graph.vector(child), vector):
                best = max(best, 1 + longest_dominating_path(child))
        return best

    depth = 0
    if graph.num_layers:
        for rid in sorted(graph.layer(0)):
            if dominates(graph.vector(rid), vector):
                depth = max(depth, longest_dominating_path(rid))
    target = depth  # paper's (n+1)th layer, 0-based

    # Lines 8-9: the dominated records of layer n+1 and ALL their
    # descendants form S.
    affected: list = []
    seen: set = set()
    if target < graph.num_layers:
        frontier = [
            rid
            for rid in sorted(graph.layer(target))
            if dominates(vector, graph.vector(rid))
        ]
        while frontier:
            nxt: list = []
            for rid in frontier:
                if rid in seen:
                    continue
                seen.add(rid)
                affected.append(rid)
                nxt.extend(sorted(graph.children_of(rid)))
            frontier = nxt

    # Lines 10-14: degrade every record of S by exactly one layer.
    for rid in sorted(affected, key=graph.layer_of, reverse=True):
        graph.move_record(rid, graph.layer_of(rid) + 1)
    graph.place_record(record_id, target)

    # Rebuild edges for everything that moved (the paper's lines 12-16,
    # done exhaustively so the graph's *edge* invariants hold even when
    # the literal layer assignment is wrong).
    touched = [record_id] + affected
    for rid in touched:
        graph.drop_edges(rid)
    for rid in touched:
        layer = graph.layer_of(rid)
        v = graph.vector(rid)
        if layer > 0:
            for upper in sorted(graph.layer(layer - 1)):
                if dominates(graph.vector(upper), v):
                    graph.add_edge(upper, rid)
        if layer + 1 < graph.num_layers:
            for lower in sorted(graph.layer(layer + 1)):
                if dominates(v, graph.vector(lower)):
                    graph.add_edge(rid, lower)
    graph.prune_empty_layers()
    return graph.layer_of(record_id)


def layers_are_maximal(graph: DominantGraph) -> bool:
    """True when the graph's layers equal the maximal-layer decomposition.

    The property the corrected maintenance preserves and the literal
    Algorithm 4 can break: every record sits at 1 + (max dominator layer).
    """
    ids = sorted(graph.real_ids())
    if not ids:
        return True
    values = graph.dataset.take(ids)
    for row, rid in enumerate(ids):
        mask = dominators_of(values[row], values)
        mask[row] = False
        expected = int(
            max((graph.layer_of(int(ids[i])) for i in np.flatnonzero(mask)),
                default=-1)
        ) + 1
        if graph.layer_of(rid) != expected:
            return False
    return True
