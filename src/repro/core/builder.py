"""Offline Dominant Graph construction (paper Section II, "Building DG").

The paper builds the DG by (1) finding each maximal layer with "any skyline
algorithm" and (2) wiring parent-children edges between consecutive layers.
:func:`build_dominant_graph` does exactly that with a pluggable skyline
routine; :func:`build_extended_graph` additionally stacks pseudo levels on
top when the first layer exceeds the θ threshold (Section IV-A).

Both builders accept a ``record_ids`` subset so a graph can index part of a
dataset — the maintenance experiments (Section V) pre-generate insertion
batches as unindexed rows and index them one at a time.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.dataset import Dataset
from repro.core.dominance import dominance_matrix
from repro.core.graph import DominantGraph
from repro.core.layers import SkylineFunction, compute_layers
from repro.core.pseudo import default_theta, extend_with_pseudo_levels


def build_dominant_graph(
    dataset: Dataset,
    skyline: SkylineFunction | None = None,
    record_ids: Sequence[int] | None = None,
) -> DominantGraph:
    """Build the plain DG index of a dataset.

    Parameters
    ----------
    dataset:
        The record set to index.
    skyline:
        Optional maximal-set routine (block -> boolean mask).  Defaults to
        the vectorized sort-filter scan; any algorithm from
        :mod:`repro.skyline` can be plugged in via
        :func:`repro.skyline.as_mask_function`.
    record_ids:
        Optional subset of rows to index (default: all rows).

    Returns
    -------
    A validated-by-construction :class:`~repro.core.graph.DominantGraph`.

    Examples
    --------
    >>> from repro.core.dataset import Dataset
    >>> ds = Dataset([[4.0, 1.0], [1.0, 4.0], [0.5, 0.5]])
    >>> graph = build_dominant_graph(ds)
    >>> graph.layer_sizes()
    [2, 1]
    """
    if record_ids is None:
        ids = np.arange(len(dataset), dtype=np.intp)
    else:
        ids = np.asarray(sorted(set(int(r) for r in record_ids)), dtype=np.intp)
        if ids.size == 0:
            raise ValueError("record_ids must select at least one record")
        if ids[0] < 0 or ids[-1] >= len(dataset):
            raise ValueError("record_ids out of range for the dataset")

    values = dataset.values[ids]
    local_layers = compute_layers(values, skyline=skyline)

    graph = DominantGraph(dataset)
    global_layers = [ids[layer] for layer in local_layers]
    for layer_index, layer_ids in enumerate(global_layers):
        for rid in layer_ids:
            graph.place_record(int(rid), layer_index)

    _wire_consecutive_layers(graph, global_layers, dataset)
    return graph


def _wire_consecutive_layers(
    graph: DominantGraph,
    layers: Sequence[np.ndarray],
    dataset: Dataset,
) -> None:
    """Add every dominance edge between each pair of consecutive layers.

    Bulk path: one :meth:`~repro.core.graph.DominantGraph.add_children`
    call per parent (a whole dominance-matrix row at a time) instead of
    one ``add_edge`` call per edge.
    """
    for upper_ids, lower_ids in zip(layers, layers[1:]):
        upper_arr = np.asarray(upper_ids, dtype=np.intp)
        lower_arr = np.asarray(lower_ids, dtype=np.intp)
        matrix = dominance_matrix(
            dataset.values[upper_arr], dataset.values[lower_arr]
        )
        for row, parent in enumerate(upper_arr.tolist()):
            children = lower_arr[matrix[row]]
            if children.size:
                graph.add_children(parent, children.tolist())


def build_extended_graph(
    dataset: Dataset,
    theta: int | None = None,
    skyline: SkylineFunction | None = None,
    record_ids: Sequence[int] | None = None,
    seed: int = 0,
) -> DominantGraph:
    """Build the Extended DG: a DG plus pseudo levels above oversized layers.

    Pseudo levels are introduced only when the first layer holds more than
    ``theta`` records (paper: "it is only necessary to introduce pseudo
    records when L1.size is large"); ``theta`` defaults to the paper's
    page/record ratio via :func:`repro.core.pseudo.default_theta`.

    Returns the same mutable :class:`~repro.core.graph.DominantGraph` type;
    pseudo records answer ``graph.is_pseudo(id)`` with ``True``.
    """
    graph = build_dominant_graph(dataset, skyline=skyline, record_ids=record_ids)
    if theta is None:
        theta = default_theta(dataset.dims)
    extend_with_pseudo_levels(graph, theta=theta, seed=seed)
    return graph
