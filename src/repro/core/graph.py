"""The Dominant Graph (Definition 2.4): layered partial-order index.

A DG stores the maximal layers ``L_1..L_n`` of a record set and, between
each pair of consecutive layers, the bipartite *parent-children* edges: a
directed edge runs from ``R`` in ``L_i`` to ``R'`` in ``L_{i+1}`` exactly
when ``R`` dominates ``R'``.  The DG is stored independently of the record
set, as in the paper ("DG is stored independently as the indexing structure
for the record set").

The *Extended* DG (Section IV-A) prepends one or more *pseudo levels*:
artificial records that dominate clusters of the layer below, introduced to
prune first-layer evaluations.  Pseudo records live in the same structure;
they are distinguished by :meth:`DominantGraph.is_pseudo`, and their
vectors are owned by the graph (real vectors are owned by the dataset).

The structure is mutable — Section V's maintenance algorithms move records
between layers in place — so all invariants are re-checkable at any time
via :meth:`DominantGraph.validate`.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro.core.dataset import Dataset
from repro.core.dominance import dominates


class DominantGraph:
    """Mutable Dominant Graph over a :class:`~repro.core.dataset.Dataset`.

    Do not construct directly in application code; use
    :func:`repro.core.builder.build_dominant_graph` or
    :func:`repro.core.builder.build_extended_graph`.  The constructor takes
    pre-computed layers and edges and trusts them (``validate()`` checks).

    Record identifiers: real records use their dataset row index
    (``0..n-1``); pseudo records are assigned ids ``n, n+1, ...`` by
    :meth:`add_pseudo_record`.
    """

    def __init__(self, dataset: Dataset) -> None:
        self._dataset = dataset
        self._layers: list[set] = []
        self._layer_of: dict = {}
        self._parents: dict = {}
        self._children: dict = {}
        self._pseudo_vectors: dict = {}
        self._next_pseudo_id = len(dataset)
        self._version = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def dataset(self) -> Dataset:
        """The indexed record set."""
        return self._dataset

    @property
    def num_layers(self) -> int:
        """Total layer count, pseudo levels included."""
        return len(self._layers)

    @property
    def num_pseudo(self) -> int:
        """How many pseudo records the graph currently holds."""
        return len(self._pseudo_vectors)

    def layer(self, index: int) -> frozenset:
        """Record ids of layer ``index`` (0-based; 0 is the topmost layer)."""
        return frozenset(self._layers[index])

    def layer_width(self, index: int) -> int:
        """Record count of layer ``index`` without copying the layer set."""
        return len(self._layers[index])

    def layer_array(self, index: int) -> np.ndarray:
        """Sorted id array of layer ``index`` (no intermediate set copy)."""
        members = self._layers[index]
        ids = np.fromiter(members, dtype=np.intp, count=len(members))
        ids.sort()
        return ids

    def layers(self) -> list:
        """All layers, topmost first, as frozensets of record ids."""
        return [frozenset(layer) for layer in self._layers]

    def layer_of(self, record_id: int) -> int:
        """0-based layer index of a record."""
        return self._layer_of[record_id]

    def __contains__(self, record_id: int) -> bool:
        return record_id in self._layer_of

    def __len__(self) -> int:
        """Number of indexed records, pseudo included."""
        return len(self._layer_of)

    def iter_records(self) -> Iterator[int]:
        """All indexed record ids, in layer order."""
        for layer in self._layers:
            yield from sorted(layer)

    def real_ids(self) -> list:
        """Ids of indexed *real* (non-pseudo) records."""
        return [rid for rid in self._layer_of if not self.is_pseudo(rid)]

    def indexed_arrays(self) -> tuple:
        """Ids and layer indices of everything indexed, as parallel arrays.

        Built with C-level iteration over the internal placement map, so
        maintenance can snapshot an ``n``-record graph without ``n`` Python
        calls.  Order is placement order (not layer order); callers that
        need layer grouping sort the arrays themselves.
        """
        n = len(self._layer_of)
        ids = np.fromiter(self._layer_of.keys(), dtype=np.intp, count=n)
        layers = np.fromiter(self._layer_of.values(), dtype=np.intp, count=n)
        return ids, layers

    def pseudo_ids(self) -> list:
        """Sorted ids of the *indexed* pseudo records.

        Registered-but-unplaced pseudos (mid-construction) are excluded,
        so the result always pairs with :meth:`indexed_arrays`.
        """
        return sorted(pid for pid in self._pseudo_vectors if pid in self._layer_of)

    def is_pseudo(self, record_id: int) -> bool:
        """True for pseudo records (Extended DG artificial parents)."""
        return record_id in self._pseudo_vectors

    def vector(self, record_id: int) -> np.ndarray:
        """Attribute vector of a record (real from the dataset, pseudo local)."""
        pseudo = self._pseudo_vectors.get(record_id)
        if pseudo is not None:
            return pseudo
        return self._dataset.vector(record_id)

    def parents_of(self, record_id: int) -> frozenset:
        """Ids of the record's parents (dominators in the previous layer)."""
        return frozenset(self._parents.get(record_id, ()))

    def children_of(self, record_id: int) -> frozenset:
        """Ids of the record's children (dominated records in the next layer)."""
        return frozenset(self._children.get(record_id, ()))

    def edge_count(self) -> int:
        """Total number of parent-child edges in the graph."""
        return sum(len(kids) for kids in self._children.values())

    def edge_endpoints(self) -> set:
        """Every id appearing as an edge endpoint in either adjacency map.

        Includes ids that are *not* placed in any layer, so
        :func:`repro.core.verify.verify_graph` can flag dangling edges
        left behind by a buggy mutation or a corrupted snapshot.
        """
        ids = set(self._children) | set(self._parents)
        for kids in self._children.values():
            ids |= kids
        for folks in self._parents.values():
            ids |= folks
        return ids

    @property
    def version(self) -> int:
        """Monotone counter bumped by every structural mutation.

        :class:`~repro.core.compiled.CompiledDG` snapshots record the
        version they were built from; a mismatch means the snapshot is
        stale and must be rebuilt with :meth:`compile`.
        """
        return self._version

    # ------------------------------------------------------------------
    # Mutation primitives (used by the builder and Section V maintenance)
    # ------------------------------------------------------------------
    def ensure_layers(self, count: int) -> None:
        """Grow the layer list to at least ``count`` layers."""
        while len(self._layers) < count:
            self._layers.append(set())

    def prepend_layer(self, record_ids: Iterable[int]) -> None:
        """Insert a new topmost layer (used to stack pseudo levels)."""
        ids = set(record_ids)
        self._layers.insert(0, ids)
        for rid, layer in list(self._layer_of.items()):
            self._layer_of[rid] = layer + 1
        for rid in ids:
            self._layer_of[rid] = 0
        self._version += 1

    def place_record(self, record_id: int, layer_index: int) -> None:
        """Put a record into a layer (no edges yet; caller wires them)."""
        if record_id in self._layer_of:
            raise ValueError(f"record {record_id} already indexed")
        self.ensure_layers(layer_index + 1)
        self._layers[layer_index].add(record_id)
        self._layer_of[record_id] = layer_index
        self._parents.setdefault(record_id, set())
        self._children.setdefault(record_id, set())
        self._version += 1

    def move_record(self, record_id: int, new_layer: int) -> None:
        """Move a record to another layer, dropping all its edges.

        The caller is responsible for re-wiring edges afterwards (see
        :mod:`repro.core.maintenance`, which rebuilds edges for every moved
        record against its new neighbouring layers).
        """
        old_layer = self._layer_of[record_id]
        if old_layer == new_layer:
            return
        self.drop_edges(record_id)
        self._layers[old_layer].discard(record_id)
        self.ensure_layers(new_layer + 1)
        self._layers[new_layer].add(record_id)
        self._layer_of[record_id] = new_layer
        self._version += 1

    def remove_record(self, record_id: int) -> None:
        """Remove a record and all of its edges from the index.

        May leave an empty layer behind; callers performing multi-step
        restructuring (Section V maintenance) finish with
        :meth:`prune_empty_layers` once layer indices are stable.
        """
        layer = self._layer_of.pop(record_id)
        self._layers[layer].discard(record_id)
        self.drop_edges(record_id)
        self._parents.pop(record_id, None)
        self._children.pop(record_id, None)
        self._pseudo_vectors.pop(record_id, None)
        self._version += 1

    def update_pseudo_vector(self, record_id: int, vector: np.ndarray) -> None:
        """Raise a pseudo record's vector (maintenance coverage repair).

        The new vector must weakly dominate the old one coordinate-wise, so
        every existing dominance the pseudo participates in as a parent is
        preserved; callers re-wire affected level boundaries afterwards.
        """
        old = self._pseudo_vectors.get(record_id)
        if old is None:
            raise ValueError(f"record {record_id} is not a pseudo record")
        vector = np.asarray(vector, dtype=np.float64).copy()
        if vector.shape != old.shape:
            raise ValueError("pseudo vector shape mismatch")
        if not np.all(np.isfinite(vector)):
            raise ValueError("pseudo vectors must be finite (no NaN/inf)")
        if np.any(vector < old):
            raise ValueError("pseudo vectors may only be raised, never lowered")
        vector.setflags(write=False)
        self._pseudo_vectors[record_id] = vector
        self._version += 1

    def add_pseudo_record(self, vector: np.ndarray) -> int:
        """Register a pseudo record's vector and return its fresh id.

        The record is *not* placed in a layer; callers follow up with
        :meth:`place_record` / :meth:`prepend_layer`.
        """
        vector = np.asarray(vector, dtype=np.float64).copy()
        if vector.shape != (self._dataset.dims,):
            raise ValueError(
                f"pseudo vector must have shape ({self._dataset.dims},), "
                f"got {vector.shape}"
            )
        if not np.all(np.isfinite(vector)):
            raise ValueError("pseudo vectors must be finite (no NaN/inf)")
        vector.setflags(write=False)
        pid = self._next_pseudo_id
        self._next_pseudo_id += 1
        self._pseudo_vectors[pid] = vector
        self._version += 1
        return pid

    def register_pseudo_record(self, record_id: int, vector: np.ndarray) -> None:
        """Register a pseudo record under an explicit id (deserialization).

        Ids must not collide with dataset rows or existing pseudo records;
        the internal id counter advances past the registered id so later
        :meth:`add_pseudo_record` calls stay collision-free.
        """
        if record_id < len(self._dataset):
            raise ValueError(
                f"pseudo id {record_id} collides with a dataset row"
            )
        if record_id in self._pseudo_vectors:
            raise ValueError(f"pseudo id {record_id} already registered")
        vector = np.asarray(vector, dtype=np.float64).copy()
        if vector.shape != (self._dataset.dims,):
            raise ValueError(
                f"pseudo vector must have shape ({self._dataset.dims},), "
                f"got {vector.shape}"
            )
        if not np.all(np.isfinite(vector)):
            raise ValueError("pseudo vectors must be finite (no NaN/inf)")
        vector.setflags(write=False)
        self._pseudo_vectors[record_id] = vector
        self._next_pseudo_id = max(self._next_pseudo_id, record_id + 1)
        self._version += 1

    def convert_to_pseudo(self, record_id: int) -> None:
        """Turn a real record into a pseudo one (mark-as-deleted, §V-B).

        The record keeps its position and edges but is no longer reported
        by the Advanced Traveler, which skips pseudo records when counting
        answers.  Its vector is snapshotted into the graph so the record
        set may drop the row independently.
        """
        if self.is_pseudo(record_id):
            return
        vector = self._dataset.vector(record_id).copy()
        vector.setflags(write=False)
        self._pseudo_vectors[record_id] = vector
        self._version += 1

    def add_edge(self, parent: int, child: int) -> None:
        """Add a parent -> child edge (consecutive layers, parent dominates)."""
        self._children.setdefault(parent, set()).add(child)
        self._parents.setdefault(child, set()).add(parent)
        self._version += 1

    def add_children(self, parent: int, children: Iterable[int]) -> None:
        """Bulk edge insertion: link ``parent`` to every id in ``children``.

        Equivalent to calling :meth:`add_edge` once per child, but updates
        the parent's child set in one operation — the builder wires whole
        dominance-matrix rows through this (one call per *parent* instead
        of one per *edge*).
        """
        kids = [int(c) for c in children]
        self._children.setdefault(parent, set()).update(kids)
        parents = self._parents
        for child in kids:
            parents.setdefault(child, set()).add(parent)
        self._version += 1

    def remove_edge(self, parent: int, child: int) -> None:
        """Remove one edge if present."""
        self._children.get(parent, set()).discard(child)
        self._parents.get(child, set()).discard(parent)
        self._version += 1

    def drop_edges(self, record_id: int) -> None:
        """Disconnect a record from all parents and children."""
        for parent in self._parents.get(record_id, set()):
            self._children.get(parent, set()).discard(record_id)
        for child in self._children.get(record_id, set()):
            self._parents.get(child, set()).discard(record_id)
        self._parents[record_id] = set()
        self._children[record_id] = set()
        self._version += 1

    def prune_empty_layers(self) -> None:
        """Delete empty layers and compact the layer indices."""
        if all(layer for layer in self._layers):
            return
        self._layers = [layer for layer in self._layers if layer]
        for index, layer in enumerate(self._layers):
            for rid in layer:
                self._layer_of[rid] = index
        self._version += 1

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------
    def validate(self, check_layer_minimality: bool = True) -> None:
        """Assert every Definition 2.3/2.4 invariant; raise on violation.

        Checks:

        1. layers partition the indexed ids; ``layer_of`` is consistent;
        2. every edge connects consecutive layers and the parent dominates
           the child;
        3. no record dominates another inside one layer;
        4. every record below the top layer has at least one parent;
        5. (optional) across boundaries whose upper layer is purely real,
           every record's parents include every dominator from the
           previous layer — i.e. real-real edges are complete, not merely
           sound.  Boundaries under a pseudo level are exempt: pseudo
           parenting follows cluster membership (Section IV-A), which is
           sound but intentionally sparse.
        """
        seen: set = set()
        for index, layer in enumerate(self._layers):
            assert layer, f"layer {index} is empty (call prune_empty_layers)"
            for rid in layer:
                assert rid not in seen, f"record {rid} in two layers"
                seen.add(rid)
                assert self._layer_of[rid] == index, (
                    f"layer_of[{rid}]={self._layer_of[rid]} but found in layer {index}"
                )
        assert seen == set(self._layer_of), "layer_of and layers disagree"

        for parent, kids in self._children.items():
            for child in kids:
                assert self._layer_of[child] == self._layer_of[parent] + 1, (
                    f"edge {parent}->{child} does not span consecutive layers"
                )
                assert dominates(self.vector(parent), self.vector(child)), (
                    f"edge {parent}->{child} without dominance"
                )
                assert parent in self._parents.get(child, set()), (
                    f"edge {parent}->{child} missing reverse link"
                )
        for child, parents in self._parents.items():
            for parent in parents:
                assert child in self._children.get(parent, set()), (
                    f"edge {parent}->{child} missing forward link"
                )

        for index, layer in enumerate(self._layers):
            members = sorted(layer)
            for i, a in enumerate(members):
                for b in members[i + 1:]:
                    va, vb = self.vector(a), self.vector(b)
                    assert not dominates(va, vb) and not dominates(vb, va), (
                        f"records {a} and {b} dominate within layer {index}"
                    )
            if index > 0:
                for rid in layer:
                    assert self._parents.get(rid), (
                        f"record {rid} in layer {index} has no parent"
                    )

        if check_layer_minimality:
            for index in range(1, len(self._layers)):
                above = sorted(self._layers[index - 1])
                if any(self.is_pseudo(p) for p in above):
                    continue  # pseudo boundaries use sparse cluster edges
                for rid in self._layers[index]:
                    expected = {
                        p for p in above if dominates(self.vector(p), self.vector(rid))
                    }
                    assert expected == self._parents.get(rid, set()), (
                        f"record {rid}: stored parents {self._parents.get(rid)} != "
                        f"dominators in previous layer {expected}"
                    )

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    def compile(self) -> "CompiledDG":
        """Freeze this graph into a flat-array query snapshot.

        Returns a :class:`~repro.core.compiled.CompiledDG`: contiguous
        value matrix, CSR adjacency, per-record in-degrees.  The snapshot
        is immutable and tied to the current :attr:`version`; any further
        mutation of this graph (maintenance inserts/deletes, edge edits)
        makes the snapshot stale, and its query kernels refuse to run
        until :meth:`compile` is called again.

        >>> from repro.core.dataset import Dataset
        >>> from repro.core.builder import build_dominant_graph
        >>> graph = build_dominant_graph(Dataset([[2.0, 2.0], [1.0, 1.0]]))
        >>> graph.compile().num_records
        2
        """
        from repro.core.compiled import CompiledDG

        return CompiledDG.from_graph(self)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def layer_sizes(self) -> list:
        """Record count per layer, topmost first."""
        return [len(layer) for layer in self._layers]

    def statistics(self) -> dict:
        """Structural summary: sizes, fan-out, and width statistics.

        Keys: ``records``, ``real_records``, ``pseudo_records``,
        ``layers``, ``edges``, ``max_layer_width``, ``mean_layer_width``,
        ``mean_parents`` (over records below the top layer),
        ``max_parents``, and ``pseudo_levels`` (leading all-pseudo layers).
        """
        sizes = self.layer_sizes()
        below_top = [
            rid for rid in self._layer_of if self._layer_of[rid] > 0
        ]
        parent_counts = [len(self._parents.get(rid, ())) for rid in below_top]
        pseudo_levels = 0
        for layer in self._layers:
            if layer and all(self.is_pseudo(rid) for rid in layer):
                pseudo_levels += 1
            else:
                break
        return {
            "records": len(self),
            "real_records": len(self) - self.num_pseudo,
            "pseudo_records": self.num_pseudo,
            "layers": self.num_layers,
            "edges": self.edge_count(),
            "max_layer_width": max(sizes) if sizes else 0,
            "mean_layer_width": (sum(sizes) / len(sizes)) if sizes else 0.0,
            "mean_parents": (
                sum(parent_counts) / len(parent_counts) if parent_counts else 0.0
            ),
            "max_parents": max(parent_counts) if parent_counts else 0,
            "pseudo_levels": pseudo_levels,
        }

    def __repr__(self) -> str:
        return (
            f"DominantGraph(records={len(self)}, layers={self.num_layers}, "
            f"pseudo={self.num_pseudo}, edges={self.edge_count()})"
        )
