"""Compiled flat-array Dominant Graph engine.

The reference Travelers (:mod:`repro.core.traveler`,
:mod:`repro.core.advanced`) follow the paper line by line over the mutable
:class:`~repro.core.graph.DominantGraph` — sets-of-ints adjacency, one
Python ``function(vector)`` call per scored record, a sorted candidate
list.  Their cost is dominated by Python dispatch, not by record access.
This module trades mutability for speed: :meth:`DominantGraph.compile`
freezes the graph into a :class:`CompiledDG` — a handful of contiguous
numpy arrays — and the compiled Travelers run Algorithm 1/2 over it with

- a contiguous ``(N, m)`` float64 **value matrix** (pseudo vectors
  inlined alongside real rows),
- **CSR adjacency**: ``children_indptr``/``children_indices`` and
  ``parents_indptr``/``parents_indices`` int32 arrays,
- a ``heapq`` **candidate list** of ``(-score, record_id)`` instead of a
  sorted list with O(n) front pops,
- **in-degree unlock**: each record carries its parent count; when a
  parent is answered every child's counter is decremented *vectorized
  over the CSR row*, and a child unlocks exactly when it hits zero —
  O(1) per edge instead of re-scanning all parents per visit,
- **batch scoring**: the first layer and every unlock batch go through
  ``ScoringFunction.score_many`` — one numpy call per batch instead of
  one Python call per record.

Bit-identical results
---------------------
The compiled engine returns exactly the reference engine's
:class:`~repro.core.result.TopKResult` — same ids, same float scores,
same :class:`~repro.metrics.counters.AccessCounter` tallies — which is
what ``tests/test_compiled_parity.py`` sweeps.  Two facts make this hold:

1. Bundled scoring functions guarantee ``score_many`` rows match
   ``__call__`` bit-for-bit regardless of batch size (see
   :mod:`repro.core.functions`); custom functions must uphold the same
   contract to get bit-identical parity.
2. The compiled kernels never truncate the candidate list, yet observable
   behaviour is unchanged.  The paper's lines 10-11 drop every answerable
   candidate beaten by the best ``k - n`` answerable candidates.  Once a
   drop has occurred the retained answerable set stays saturated at
   exactly ``k - n`` entries (pops shrink it in step with ``k - n``;
   newly unlocked children enter only by displacing a worse retained
   entry), so every retained entry always outranks every dropped one, the
   best candidate is never a dropped one, and the loop reaches ``k``
   answers before any dropped entry could pop.  Hence the pop sequence —
   and with it the unlocked/scored set — is identical with or without
   truncation; truncation only bounds memory, which the heap does not
   need.

Staleness
---------
A ``CompiledDG`` records the source graph's
:attr:`~repro.core.graph.DominantGraph.version`.  Mutating the graph
afterwards (maintenance inserts/deletes, edge edits) invalidates the
snapshot; its query kernels raise rather than serve answers from a
structure that no longer exists.  Recompile after maintenance batches.
"""

from __future__ import annotations

import heapq
from collections.abc import Sequence

import numpy as np

from repro.core.functions import LinearFunction, ScoringFunction, WherePredicate
from repro.core.graph import DominantGraph
from repro.core.result import TopKResult
from repro.errors import StaleSnapshotError
from repro.metrics.counters import AccessCounter


class CompiledDG:
    """Immutable flat-array snapshot of a :class:`DominantGraph`.

    Records are re-numbered into *dense* indices ``0..N-1`` sorted by
    ``(layer, record_id)``, so the first layer occupies a prefix and every
    CSR row lists children/parents in ascending record-id order.  All
    query results are reported in original record ids.

    Build with :meth:`from_graph` (or ``graph.compile()``); query with
    :class:`CompiledBasicTraveler` / :class:`CompiledAdvancedTraveler`.
    """

    def __init__(
        self,
        *,
        values: np.ndarray,
        record_ids: np.ndarray,
        layer_index: np.ndarray,
        pseudo_mask: np.ndarray,
        children_indptr: np.ndarray,
        children_indices: np.ndarray,
        parents_indptr: np.ndarray,
        parents_indices: np.ndarray,
        indegree: np.ndarray,
        first_layer_size: int,
        source: DominantGraph | None = None,
        source_version: int = 0,
    ) -> None:
        self.values = values
        self.record_ids = record_ids
        self.layer_index = layer_index
        self.pseudo_mask = pseudo_mask
        self.children_indptr = children_indptr
        self.children_indices = children_indices
        self.parents_indptr = parents_indptr
        self.parents_indices = parents_indices
        self.indegree = indegree
        self.first_layer_size = int(first_layer_size)
        self._source = source
        self._source_version = source_version
        for array in (
            values, record_ids, layer_index, pseudo_mask, children_indptr,
            children_indices, parents_indptr, parents_indices, indegree,
        ):
            array.setflags(write=False)

    @classmethod
    def from_graph(cls, graph: DominantGraph) -> "CompiledDG":
        """Snapshot a (possibly Extended) Dominant Graph into flat arrays."""
        order = sorted(
            ((graph.layer_of(rid), rid) for rid in graph.iter_records())
        )
        ids = [rid for _, rid in order]
        n = len(ids)
        dims = graph.dataset.dims
        dense_of = {rid: i for i, rid in enumerate(ids)}

        values = np.empty((n, dims), dtype=np.float64)
        pseudo_mask = np.zeros(n, dtype=bool)
        layer_index = np.empty(n, dtype=np.int32)
        for i, (layer, rid) in enumerate(order):
            values[i] = graph.vector(rid)
            pseudo_mask[i] = graph.is_pseudo(rid)
            layer_index[i] = layer

        children_indptr = np.zeros(n + 1, dtype=np.int32)
        parents_indptr = np.zeros(n + 1, dtype=np.int32)
        children_chunks: list = []
        parents_chunks: list = []
        for i, rid in enumerate(ids):
            kids = sorted(dense_of[c] for c in graph.children_of(rid))
            folks = sorted(dense_of[p] for p in graph.parents_of(rid))
            children_chunks.extend(kids)
            parents_chunks.extend(folks)
            children_indptr[i + 1] = len(children_chunks)
            parents_indptr[i + 1] = len(parents_chunks)
        children_indices = np.asarray(children_chunks, dtype=np.int32)
        parents_indices = np.asarray(parents_chunks, dtype=np.int32)
        indegree = np.diff(parents_indptr).astype(np.int32)

        first = int(np.searchsorted(layer_index, 0, side="right")) if n else 0
        return cls(
            values=values,
            record_ids=np.asarray(ids, dtype=np.int64),
            layer_index=layer_index,
            pseudo_mask=pseudo_mask,
            children_indptr=children_indptr,
            children_indices=children_indices,
            parents_indptr=parents_indptr,
            parents_indices=parents_indices,
            indegree=indegree,
            first_layer_size=first,
            source=graph,
            source_version=graph.version,
        )

    @property
    def num_records(self) -> int:
        """Indexed record count, pseudo included."""
        return int(self.record_ids.shape[0])

    @property
    def num_pseudo(self) -> int:
        """How many snapshot records are pseudo records."""
        return int(self.pseudo_mask.sum())

    @property
    def num_edges(self) -> int:
        """Total parent -> child edges in the snapshot."""
        return int(self.children_indices.shape[0])

    @property
    def stale(self) -> bool:
        """True when the source graph has mutated since compilation."""
        return (
            self._source is not None
            and self._source.version != self._source_version
        )

    def detach(self) -> "CompiledDG":
        """Sever the staleness link to the source graph; returns ``self``.

        Staleness tracking exists to stop a *single-version* deployment
        from serving answers off a structure that no longer matches its
        graph.  A multi-version deployment — the RCU snapshot rotation of
        :class:`~repro.serve.index.ServingIndex` — wants the opposite:
        in-flight readers must keep answering from the snapshot they
        pinned while the writer mutates the graph and publishes the next
        one.  Every array is already an immutable copy, so a detached
        snapshot is self-contained; it simply never reports stale.
        """
        self._source = None
        return self

    def __repr__(self) -> str:
        return (
            f"CompiledDG(records={self.num_records}, "
            f"pseudo={self.num_pseudo}, edges={self.num_edges}, "
            f"stale={self.stale})"
        )


def _traverse(
    compiled: CompiledDG,
    function: ScoringFunction,
    k: int,
    where: WherePredicate | None,
    algorithm: str,
    stats: AccessCounter | None = None,
) -> TopKResult:
    """Shared Algorithm 1/2 kernel over a :class:`CompiledDG`.

    Best-first heap traversal with in-degree unlocking and batch scoring;
    see the module docstring for why skipping CL truncation is exact.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    if compiled.stale:
        raise StaleSnapshotError(
            "CompiledDG is stale: the source DominantGraph mutated after "
            "compile(); rebuild the snapshot with graph.compile()"
        )
    values = compiled.values
    ids = compiled.record_ids
    pseudo = compiled.pseudo_mask
    indptr = compiled.children_indptr
    indices = compiled.children_indices
    remaining = compiled.indegree.copy()
    stats = stats if stats is not None else AccessCounter()
    answerable = np.zeros(compiled.num_records, dtype=bool)
    heap: list = []

    def unlock(batch: np.ndarray) -> None:
        """Score a dense-index batch and push it onto the candidate heap."""
        scores = function.score_many(values[batch])
        originals = ids[batch]
        stats.count_computed_batch(
            originals, pseudo=int(pseudo[batch].sum())
        )
        if where is None:
            answerable[batch] = ~pseudo[batch]
        else:
            for dense in batch.tolist():
                answerable[dense] = not pseudo[dense] and bool(
                    where(values[dense])
                )
        for dense, orig, score in zip(
            batch.tolist(), originals.tolist(), scores.tolist()
        ):
            heapq.heappush(heap, (-score, orig, dense))

    if compiled.first_layer_size:
        unlock(np.arange(compiled.first_layer_size, dtype=np.intp))

    answers: list = []
    found = 0
    while found < k and heap:
        neg_score, orig, dense = heapq.heappop(heap)
        if answerable[dense]:
            answers.append((-neg_score, orig))
            found += 1
            if found == k:
                break
        lo, hi = int(indptr[dense]), int(indptr[dense + 1])
        if lo == hi:
            continue
        kids = indices[lo:hi].astype(np.intp)
        decremented = remaining[kids] - 1
        remaining[kids] = decremented
        ready = kids[decremented == 0]
        if ready.size:
            unlock(ready)

    return TopKResult.from_pairs(answers, stats, algorithm=algorithm)


class CompiledBasicTraveler:
    """Basic Traveler (Algorithm 1) over a :class:`CompiledDG` snapshot.

    Same contract as :class:`~repro.core.traveler.BasicTraveler` — plain
    DGs only — with bit-identical results and access counts.

    Examples
    --------
    >>> from repro.core.dataset import Dataset
    >>> from repro.core.builder import build_dominant_graph
    >>> from repro.core.functions import LinearFunction
    >>> ds = Dataset([[4.0, 1.0], [1.0, 4.0], [0.5, 0.5]])
    >>> compiled = build_dominant_graph(ds).compile()
    >>> result = CompiledBasicTraveler(compiled).top_k(
    ...     LinearFunction([0.5, 0.5]), k=2)
    >>> sorted(result.ids)
    [0, 1]
    """

    name = "compiled-basic-traveler"

    def __init__(self, compiled: CompiledDG) -> None:
        if compiled.num_pseudo:
            raise ValueError(
                "CompiledBasicTraveler requires a plain DG; use "
                "CompiledAdvancedTraveler for graphs with pseudo records"
            )
        self._compiled = compiled

    @property
    def compiled(self) -> CompiledDG:
        """The underlying snapshot."""
        return self._compiled

    def top_k(
        self,
        function: ScoringFunction,
        k: int,
        *,
        stats: AccessCounter | None = None,
    ) -> TopKResult:
        """Answer a top-k query for any aggregate monotone ``function``."""
        return _traverse(self._compiled, function, k, None, self.name, stats)


class CompiledAdvancedTraveler:
    """Advanced Traveler (Algorithm 2) over a :class:`CompiledDG` snapshot.

    Handles Extended DGs (pseudo records never count toward ``k``) and the
    ``where=`` filtered path, bit-identical to
    :class:`~repro.core.advanced.AdvancedTraveler`.

    Examples
    --------
    >>> from repro.core.dataset import Dataset
    >>> from repro.core.builder import build_extended_graph
    >>> from repro.core.functions import LinearFunction
    >>> ds = Dataset([[4.0, 1.0], [1.0, 4.0], [0.5, 0.5]])
    >>> compiled = build_extended_graph(ds, theta=2).compile()
    >>> result = CompiledAdvancedTraveler(compiled).top_k(
    ...     LinearFunction([0.5, 0.5]), k=2)
    >>> sorted(result.ids)
    [0, 1]
    """

    name = "compiled-advanced-traveler"

    def __init__(self, compiled: CompiledDG) -> None:
        self._compiled = compiled

    @property
    def compiled(self) -> CompiledDG:
        """The underlying snapshot."""
        return self._compiled

    def top_k(
        self,
        function: ScoringFunction,
        k: int,
        where: WherePredicate | None = None,
        *,
        stats: AccessCounter | None = None,
    ) -> TopKResult:
        """Answer a top-k query; only real, ``where``-matching records count.

        Parameters mirror
        :meth:`repro.core.advanced.AdvancedTraveler.top_k`: ``where`` is an
        optional ``vector -> bool`` predicate; non-matching records are
        traversed (they still unlock their subtrees) but never reported.
        """
        return _traverse(self._compiled, function, k, where, self.name, stats)


BATCH_ALGORITHM = "compiled-batch"


def _layer_bounds(compiled: CompiledDG) -> np.ndarray:
    """Dense-index boundaries of each layer block.

    Dense order is sorted by ``(layer, record_id)``, so layer ``l``
    occupies ``bounds[l]:bounds[l + 1]``.  Returns an int64 array of
    length ``num_layers + 1``.
    """
    layer_index = compiled.layer_index
    n = int(layer_index.shape[0])
    if n == 0:
        return np.zeros(1, dtype=np.int64)
    num_layers = int(layer_index[-1]) + 1
    bounds = np.searchsorted(
        layer_index, np.arange(num_layers + 1, dtype=np.int64), side="left"
    ).astype(np.int64)
    bounds[num_layers] = n
    return bounds


def batch_top_k(
    compiled: CompiledDG,
    functions: Sequence[ScoringFunction],
    k: int,
    *,
    where: WherePredicate | None = None,
    stats: Sequence[AccessCounter] | None = None,
) -> list[TopKResult]:
    """Answer many top-k queries in one layer-progressive numpy sweep.

    Instead of one best-first traversal per query, the batch kernel walks
    the snapshot's layer blocks in order and scores each block for every
    still-active query in a single broadcast numpy call (when every
    function is a :class:`~repro.core.functions.LinearFunction`, one
    ``(queries, block, dims)`` multiply; otherwise one ``score_many`` call
    per active query per block).  A query retires as soon as it provably
    cannot improve: by graph invariant every layer-``l + 1`` record is
    dominated by some layer-``l`` record, so for any monotone function no
    unseen record can beat the maximum score in the last processed layer;
    once ``k`` answerable records are banked and the running ``k``-th best
    score *strictly* exceeds that bound (strict, so score ties — which
    tie-break on ascending id — are still resolved exactly) the remaining
    layers cannot contribute.

    Results are bit-identical to
    :meth:`CompiledAdvancedTraveler.top_k` per query: identical ids,
    identical float scores, identical ``(-score, id)`` ordering.  Access
    tallies differ — the batch kernel charges whole layer blocks, the
    traversal only unlocked frontiers — and are recorded per query in
    ``stats``.

    Parameters
    ----------
    compiled:
        The snapshot to query (plain or Extended; pseudo records never
        count toward ``k``).
    functions:
        One aggregate monotone scoring function per query.
    k:
        Answers per query (positive).
    where:
        Optional ``vector -> bool`` filter shared by the whole batch;
        evaluated once per scored record, not once per query.
    stats:
        Optional per-query counters, one per function.  Fresh counters
        are created when omitted.

    Peak memory is ``len(functions) * num_records * 8`` bytes for the
    score matrix; cap the batch size accordingly (the parallel executor
    defaults to 64-query sub-batches).
    """
    if k <= 0:
        raise ValueError("k must be positive")
    if compiled.stale:
        raise StaleSnapshotError(
            "CompiledDG is stale: the source DominantGraph mutated after "
            "compile(); rebuild the snapshot with graph.compile()"
        )
    num_queries = len(functions)
    if stats is None:
        counters = [AccessCounter() for _ in range(num_queries)]
    else:
        counters = list(stats)
        if len(counters) != num_queries:
            raise ValueError(
                f"stats must have one counter per function: "
                f"{len(counters)} != {num_queries}"
            )
    if num_queries == 0:
        return []

    values = compiled.values
    ids_arr = compiled.record_ids
    pseudo = compiled.pseudo_mask
    n = int(values.shape[0])
    if n == 0:
        return [
            TopKResult.from_pairs([], counters[q], algorithm=BATCH_ALGORITHM)
            for q in range(num_queries)
        ]

    weights: np.ndarray | None = None
    linear = [f for f in functions if isinstance(f, LinearFunction)]
    if len(linear) == num_queries:
        weights = np.stack([f.weights for f in linear])
        if int(weights.shape[1]) != int(values.shape[1]):
            raise ValueError(
                f"function dims {int(weights.shape[1])} != "
                f"snapshot dims {int(values.shape[1])}"
            )

    bounds = _layer_bounds(compiled)
    num_layers = int(bounds.shape[0]) - 1
    if where is None:
        answerable = ~pseudo
    else:
        answerable = np.zeros(n, dtype=bool)

    scores_all = np.empty((num_queries, n), dtype=np.float64)
    active = np.ones(num_queries, dtype=bool)
    topk = np.full((num_queries, k), -np.inf, dtype=np.float64)
    stop_prefix = np.full(num_queries, n, dtype=np.int64)
    ans_count = 0

    for layer in range(num_layers):
        lo, hi = int(bounds[layer]), int(bounds[layer + 1])
        block = values[lo:hi]
        act_idx = np.flatnonzero(active)
        if weights is not None:
            block_scores = np.sum(
                block[None, :, :] * weights[act_idx, None, :], axis=2
            )
        else:
            block_scores = np.empty((act_idx.size, hi - lo), dtype=np.float64)
            for row, q in enumerate(act_idx.tolist()):
                block_scores[row] = functions[q].score_many(block)
        scores_all[act_idx, lo:hi] = block_scores

        # One owning copy per layer, shared by every active query's
        # counter — a slice view would pin the snapshot buffer (fatal for
        # shared-memory workers) and get re-copied per query instead.
        block_ids = ids_arr[lo:hi].copy()
        block_pseudo = int(pseudo[lo:hi].sum())
        for q in act_idx.tolist():
            counters[q].count_computed_batch(block_ids, pseudo=block_pseudo)

        if where is None:
            ans_block = answerable[lo:hi]
        else:
            ans_block = np.zeros(hi - lo, dtype=bool)
            for offset in range(hi - lo):
                dense = lo + offset
                ans_block[offset] = not pseudo[dense] and bool(
                    where(values[dense])
                )
            answerable[lo:hi] = ans_block

        num_answerable = int(ans_block.sum())
        layer_max = block_scores.max(axis=1)
        if num_answerable:
            pool = np.concatenate(
                [topk[act_idx], block_scores[:, ans_block]], axis=1
            )
            topk[act_idx] = np.partition(
                pool, int(pool.shape[1]) - k, axis=1
            )[:, -k:]
            ans_count += num_answerable
        # After any partition, column 0 of the kept slice is the k-th
        # best (row minimum); before the first partition every entry is
        # -inf, so column 0 is still the row minimum.
        kth = topk[act_idx, 0]
        done = (ans_count >= k) & (kth > layer_max)
        if layer == num_layers - 1:
            done = np.ones(act_idx.size, dtype=bool)
        retired = act_idx[done]
        stop_prefix[retired] = hi
        active[retired] = False
        if not active.any():
            break

    results: list[TopKResult] = []
    for q in range(num_queries):
        prefix = int(stop_prefix[q])
        dense_idx = np.flatnonzero(answerable[:prefix])
        scores_q = scores_all[q, :prefix][dense_idx]
        available = int(dense_idx.size)
        take = min(k, available)
        if take == 0:
            results.append(
                TopKResult.from_pairs([], counters[q], algorithm=BATCH_ALGORITHM)
            )
            continue
        if available > take:
            kth_value = np.partition(scores_q, available - take)[
                available - take
            ]
            keep = np.flatnonzero(scores_q >= kth_value)
            kept_scores = scores_q[keep]
            kept_ids = ids_arr[dense_idx[keep]]
        else:
            kept_scores = scores_q
            kept_ids = ids_arr[dense_idx]
        order = np.lexsort((kept_ids, -kept_scores))[:take]
        pairs = [
            (float(kept_scores[i]), int(kept_ids[i])) for i in order.tolist()
        ]
        results.append(
            TopKResult.from_pairs(pairs, counters[q], algorithm=BATCH_ALGORITHM)
        )
    return results
