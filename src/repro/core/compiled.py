"""Compiled flat-array Dominant Graph engine: one batch kernel, two lanes.

The reference Travelers (:mod:`repro.core.traveler`,
:mod:`repro.core.advanced`) follow the paper line by line over the mutable
:class:`~repro.core.graph.DominantGraph` — sets-of-ints adjacency, one
Python ``function(vector)`` call per scored record, a sorted candidate
list.  Their cost is dominated by Python dispatch, not by record access.
This module trades mutability for speed: :meth:`DominantGraph.compile`
freezes the graph into a :class:`CompiledDG` — a handful of contiguous
numpy arrays — and **every** compiled query, single or batched, runs
through one layer-progressive kernel, :func:`batch_top_k`.  A single
query is simply a batch of one; there is no separate traversal code path
left to diverge from the batch kernel (the old best-first heap traversal
was deleted when the batch kernel became strictly faster even at batch
size one).

The kernel walks the snapshot's layer blocks front to back, grouped into
geometrically growing *chunks*, and for each chunk computes every active
query's scores plus the chunk's per-query maximum in the same pass (the
fused score+bound sweep).  A query retires as soon as it provably cannot
improve: by the DG layer invariant every layer-``l + 1`` record is
dominated by some layer-``l`` record, so for any monotone function no
unseen record can beat the maximum score of the last processed layer.

Two scoring lanes
-----------------
**float64 lane** (always available, any monotone function): scores each
chunk with ``ScoringFunction.score_many`` semantics in float64 and
selects answers directly from those exact scores.  This is the parity
oracle — bit-identical to the reference Travelers by the ``score_many``
determinism contract (:mod:`repro.core.functions`).

**float32 fast lane** (all-:class:`~repro.core.functions.LinearFunction`
batches): scores chunks in float32 — one BLAS ``sgemm`` per chunk over a
cached float32 copy of the value matrix — and *re-checks the boundary in
exact float64*.  Exactness argument:

1. Any-order float32 evaluation of ``s = sum_i w_i * x_i`` (including
   FMA contraction and blocked/reassociated BLAS or ``fastmath``
   summation) satisfies ``|s32 - s| <= margin`` with ``margin =
   (d + 4) * 2**-21 * sum_i|w_i| * max|values|`` — a >=4x inflation of
   the standard ``gamma_{d+2}``-style bound on float32 dot products with
   float32-rounded inputs, valid for every summation order, plus a tiny
   absolute term for subnormal rounding.
2. The exact k-th best score therefore sits within ``margin`` of the
   float32 k-th best, so every member of the exact top-k has a float32
   score ``>= kth32 - 2 * margin``.  The kernel re-scores exactly that
   candidate set in float64 (same elementwise-multiply + ``np.sum``
   reduction as ``LinearFunction.score_many``, hence bit-identical
   scores) and runs the ordinary exact selection on it.
3. Retirement is made conservative by the same margin on both sides —
   retire only when ``kth32 - margin > chunk_max32 + margin`` — so the
   fast lane may scan *at most more* records than the float64 lane,
   never fewer, and extra records all score strictly below the k-th.

The result is bit-identical ``(-score, id)`` answer orderings **by
construction**, which ``tests/test_fast_lane.py`` stresses with
sub-float32-epsilon near-ties and a hypothesis sweep, and the parity
suites re-check against the reference Travelers.  Set
``REPRO_FAST_LANE=0`` to force the float64 lane.

An optional native build of the fused float32 score+max loop
(:mod:`repro.core.native`, numba, ``REPRO_NATIVE=1``, the ``[native]``
extra) slots in below the fast lane; the pure-numpy path remains the
always-on oracle.

Access accounting
-----------------
The kernel charges whole chunks of layers to each active query's
:class:`~repro.metrics.counters.AccessCounter` — it trades extra score
computations for vectorization — so compiled-engine tallies legitimately
exceed the reference Travelers' best-first frontier counts.  Budgets
(:class:`~repro.core.guard.BudgetedAccessCounter`) ride those charges
and abort mid-kernel exactly as they aborted mid-traversal.  Use the
reference Travelers when reproducing the paper's accessed-records
figures.

Staleness
---------
A ``CompiledDG`` records the source graph's
:attr:`~repro.core.graph.DominantGraph.version`.  Mutating the graph
afterwards (maintenance inserts/deletes, edge edits) invalidates the
snapshot; its query kernels raise rather than serve answers from a
structure that no longer exists.  Recompile after maintenance batches.
"""

from __future__ import annotations

import os
from collections.abc import Iterator, Sequence

import numpy as np

from repro.core import native
from repro.core.functions import LinearFunction, ScoringFunction, WherePredicate
from repro.core.graph import DominantGraph
from repro.core.result import TopKResult
from repro.errors import StaleSnapshotError
from repro.metrics.counters import AccessCounter
from repro.resilience.deadline import Deadline

#: Algorithm label stamped on results produced by :func:`batch_top_k`
#: unless the caller passes its own.
BATCH_ALGORITHM = "compiled-batch"

#: Environment variable: set to ``"0"`` to disable the float32 fast lane
#: (every linear batch then runs the float64 oracle lane).
FAST_LANE_ENV = "REPRO_FAST_LANE"

#: Minimum rows per kernel chunk; consecutive layers are merged until a
#: chunk reaches ``max(k, _CHUNK_MIN_ROWS)``, and the target doubles per
#: chunk so deep scans pay O(log n) python iterations, not O(layers).
_CHUNK_MIN_ROWS = 1024


class CompiledDG:
    """Immutable flat-array snapshot of a :class:`DominantGraph`.

    Records are re-numbered into *dense* indices ``0..N-1`` sorted by
    ``(layer, record_id)``, so the first layer occupies a prefix and every
    CSR row lists children/parents in ascending record-id order.  All
    query results are reported in original record ids.

    Build with :meth:`from_graph` (or ``graph.compile()``); query with
    :meth:`top_k` (single query) or :func:`batch_top_k` (many queries,
    one sweep).  :class:`CompiledBasicTraveler` /
    :class:`CompiledAdvancedTraveler` remain as thin batch-of-one
    wrappers over the same kernel.
    """

    def __init__(
        self,
        *,
        values: np.ndarray,
        record_ids: np.ndarray,
        layer_index: np.ndarray,
        pseudo_mask: np.ndarray,
        children_indptr: np.ndarray,
        children_indices: np.ndarray,
        parents_indptr: np.ndarray,
        parents_indices: np.ndarray,
        indegree: np.ndarray,
        first_layer_size: int,
        source: DominantGraph | None = None,
        source_version: int = 0,
    ) -> None:
        self.values = values
        self.record_ids = record_ids
        self.layer_index = layer_index
        self.pseudo_mask = pseudo_mask
        self.children_indptr = children_indptr
        self.children_indices = children_indices
        self.parents_indptr = parents_indptr
        self.parents_indices = parents_indices
        self.indegree = indegree
        self.first_layer_size = int(first_layer_size)
        self._source = source
        self._source_version = source_version
        # Lazy per-process query-kernel caches; never pickled or shared.
        self._layer_bounds_cache: np.ndarray | None = None
        self._values_f32_cache: np.ndarray | None = None
        self._abs_max_cache: float | None = None
        for array in (
            values, record_ids, layer_index, pseudo_mask, children_indptr,
            children_indices, parents_indptr, parents_indices, indegree,
        ):
            array.setflags(write=False)

    @classmethod
    def from_graph(cls, graph: DominantGraph) -> "CompiledDG":
        """Snapshot a (possibly Extended) Dominant Graph into flat arrays."""
        order = sorted(
            ((graph.layer_of(rid), rid) for rid in graph.iter_records())
        )
        ids = [rid for _, rid in order]
        n = len(ids)
        dims = graph.dataset.dims
        dense_of = {rid: i for i, rid in enumerate(ids)}

        values = np.empty((n, dims), dtype=np.float64)
        pseudo_mask = np.zeros(n, dtype=bool)
        layer_index = np.empty(n, dtype=np.int32)
        for i, (layer, rid) in enumerate(order):
            values[i] = graph.vector(rid)
            pseudo_mask[i] = graph.is_pseudo(rid)
            layer_index[i] = layer

        children_indptr = np.zeros(n + 1, dtype=np.int32)
        parents_indptr = np.zeros(n + 1, dtype=np.int32)
        children_chunks: "list[int]" = []
        parents_chunks: "list[int]" = []
        for i, rid in enumerate(ids):
            kids = sorted(dense_of[c] for c in graph.children_of(rid))
            folks = sorted(dense_of[p] for p in graph.parents_of(rid))
            children_chunks.extend(kids)
            parents_chunks.extend(folks)
            children_indptr[i + 1] = len(children_chunks)
            parents_indptr[i + 1] = len(parents_chunks)
        children_indices = np.asarray(children_chunks, dtype=np.int32)
        parents_indices = np.asarray(parents_chunks, dtype=np.int32)
        indegree = np.diff(parents_indptr).astype(np.int32)

        first = int(np.searchsorted(layer_index, 0, side="right")) if n else 0
        return cls(
            values=values,
            record_ids=np.asarray(ids, dtype=np.int64),
            layer_index=layer_index,
            pseudo_mask=pseudo_mask,
            children_indptr=children_indptr,
            children_indices=children_indices,
            parents_indptr=parents_indptr,
            parents_indices=parents_indices,
            indegree=indegree,
            first_layer_size=first,
            source=graph,
            source_version=graph.version,
        )

    @property
    def num_records(self) -> int:
        """Indexed record count, pseudo included."""
        return int(self.record_ids.shape[0])

    @property
    def num_pseudo(self) -> int:
        """How many snapshot records are pseudo records."""
        return int(self.pseudo_mask.sum())

    @property
    def num_edges(self) -> int:
        """Total parent -> child edges in the snapshot."""
        return int(self.children_indices.shape[0])

    @property
    def stale(self) -> bool:
        """True when the source graph has mutated since compilation."""
        return (
            self._source is not None
            and self._source.version != self._source_version
        )

    def detach(self) -> "CompiledDG":
        """Sever the staleness link to the source graph; returns ``self``.

        Staleness tracking exists to stop a *single-version* deployment
        from serving answers off a structure that no longer exists.  A
        multi-version deployment — the RCU snapshot rotation of
        :class:`~repro.serve.index.ServingIndex` — wants the opposite:
        in-flight readers must keep answering from the snapshot they
        pinned while the writer mutates the graph and publishes the next
        one.  Every array is already an immutable copy, so a detached
        snapshot is self-contained; it simply never reports stale.
        """
        self._source = None
        return self

    def layer_bounds(self) -> np.ndarray:
        """Dense-index boundaries of each layer block (cached).

        Dense order is sorted by ``(layer, record_id)``, so layer ``l``
        occupies ``bounds[l]:bounds[l + 1]``.  Returns an int64 array of
        length ``num_layers + 1``; computed once per snapshot because the
        kernel reads it on every query.
        """
        if self._layer_bounds_cache is None:
            layer_index = self.layer_index
            n = int(layer_index.shape[0])
            if n == 0:
                bounds = np.zeros(1, dtype=np.int64)
            else:
                num_layers = int(layer_index[-1]) + 1
                bounds = np.searchsorted(
                    layer_index,
                    np.arange(num_layers + 1, dtype=np.int64),
                    side="left",
                ).astype(np.int64)
                bounds[num_layers] = n
            bounds.setflags(write=False)
            self._layer_bounds_cache = bounds
        return self._layer_bounds_cache

    def _f32_values(self) -> np.ndarray:
        """Cached float32 copy of the value matrix for the fast lane.

        Built once per snapshot per process; the exact float64 matrix
        stays the source of truth (the fast lane only uses this copy for
        provisional scores it re-checks in float64).
        """
        if self._values_f32_cache is None:
            block = np.ascontiguousarray(self.values, dtype=np.float32)
            block.setflags(write=False)
            self._values_f32_cache = block
        return self._values_f32_cache

    def abs_max(self) -> float:
        """Largest absolute attribute value in the snapshot (cached).

        The fast lane's error margin scales with this bound; an empty
        snapshot reports ``0.0``.
        """
        if self._abs_max_cache is None:
            self._abs_max_cache = (
                float(np.abs(self.values).max()) if self.values.size else 0.0
            )
        return self._abs_max_cache

    def top_k(
        self,
        function: ScoringFunction,
        k: int,
        *,
        where: WherePredicate | None = None,
        stats: AccessCounter | None = None,
        algorithm: str = BATCH_ALGORITHM,
        deadline: Deadline | None = None,
        exclude: np.ndarray | None = None,
    ) -> TopKResult:
        """Answer one top-k query: a batch of one through the kernel.

        This is the single internal execution path — the guard's
        compiled tier, :class:`~repro.serve.index.ServingIndex` reads,
        and the parallel fabric's ``full`` worker mode all land here.
        Parameters mirror
        :meth:`repro.core.advanced.AdvancedTraveler.top_k`; ``deadline``
        is checked between layer chunks and ``exclude`` masks dense rows
        out of the answer set (see :func:`batch_top_k`).
        """
        (result,) = batch_top_k(
            self,
            [function],
            k,
            where=where,
            stats=None if stats is None else [stats],
            algorithm=algorithm,
            deadline=deadline,
            exclude=exclude,
        )
        return result

    def __repr__(self) -> str:
        return (
            f"CompiledDG(records={self.num_records}, "
            f"pseudo={self.num_pseudo}, edges={self.num_edges}, "
            f"stale={self.stale})"
        )


class CompiledBasicTraveler:
    """Basic Traveler interface (Algorithm 1) over a :class:`CompiledDG`.

    Same contract as :class:`~repro.core.traveler.BasicTraveler` — plain
    DGs only — with identical ``(-score, id)`` answer orderings.  A thin
    batch-of-one wrapper over :func:`batch_top_k`.

    Examples
    --------
    >>> from repro.core.dataset import Dataset
    >>> from repro.core.builder import build_dominant_graph
    >>> from repro.core.functions import LinearFunction
    >>> ds = Dataset([[4.0, 1.0], [1.0, 4.0], [0.5, 0.5]])
    >>> compiled = build_dominant_graph(ds).compile()
    >>> result = CompiledBasicTraveler(compiled).top_k(
    ...     LinearFunction([0.5, 0.5]), k=2)
    >>> sorted(result.ids)
    [0, 1]
    """

    name = "compiled-basic-traveler"

    def __init__(self, compiled: CompiledDG) -> None:
        if compiled.num_pseudo:
            raise ValueError(
                "CompiledBasicTraveler requires a plain DG; use "
                "CompiledAdvancedTraveler for graphs with pseudo records"
            )
        self._compiled = compiled

    @property
    def compiled(self) -> CompiledDG:
        """The underlying snapshot."""
        return self._compiled

    def top_k(
        self,
        function: ScoringFunction,
        k: int,
        *,
        stats: AccessCounter | None = None,
    ) -> TopKResult:
        """Answer a top-k query for any aggregate monotone ``function``."""
        return self._compiled.top_k(
            function, k, stats=stats, algorithm=self.name
        )


class CompiledAdvancedTraveler:
    """Advanced Traveler interface (Algorithm 2) over a :class:`CompiledDG`.

    Handles Extended DGs (pseudo records never count toward ``k``) and the
    ``where=`` filtered path, with answers identical to
    :class:`~repro.core.advanced.AdvancedTraveler`.  A thin batch-of-one
    wrapper over :func:`batch_top_k`.

    Examples
    --------
    >>> from repro.core.dataset import Dataset
    >>> from repro.core.builder import build_extended_graph
    >>> from repro.core.functions import LinearFunction
    >>> ds = Dataset([[4.0, 1.0], [1.0, 4.0], [0.5, 0.5]])
    >>> compiled = build_extended_graph(ds, theta=2).compile()
    >>> result = CompiledAdvancedTraveler(compiled).top_k(
    ...     LinearFunction([0.5, 0.5]), k=2)
    >>> sorted(result.ids)
    [0, 1]
    """

    name = "compiled-advanced-traveler"

    def __init__(self, compiled: CompiledDG) -> None:
        self._compiled = compiled

    @property
    def compiled(self) -> CompiledDG:
        """The underlying snapshot."""
        return self._compiled

    def top_k(
        self,
        function: ScoringFunction,
        k: int,
        where: WherePredicate | None = None,
        *,
        stats: AccessCounter | None = None,
        deadline: Deadline | None = None,
    ) -> TopKResult:
        """Answer a top-k query; only real, ``where``-matching records count.

        Parameters mirror
        :meth:`repro.core.advanced.AdvancedTraveler.top_k`: ``where`` is an
        optional ``vector -> bool`` predicate; non-matching records are
        scanned (they still bound the search) but never reported.
        ``deadline`` is checked at kernel chunk boundaries.
        """
        return self._compiled.top_k(
            function,
            k,
            where=where,
            stats=stats,
            algorithm=self.name,
            deadline=deadline,
        )


def fast_lane_enabled() -> bool:
    """Whether the float32 fast lane may run (``REPRO_FAST_LANE`` != 0)."""
    return os.environ.get(FAST_LANE_ENV, "") != "0"


def _f32_margin(dims: int, weight_abs_sums: np.ndarray, abs_max: float) -> np.ndarray:
    """Per-query error bound of the float32 lane, in float64.

    Any-order float32 evaluation of ``sum_i w_i * x_i`` from
    float32-rounded inputs — sequential, blocked, reassociated, or
    FMA-contracted — deviates from the exact float64 value by at most
    ``gamma_{d+2} * sum_i |w_i| |x_i|`` with
    ``gamma_m = m * u / (1 - m * u)`` and ``u = 2**-24``.  Bounding
    ``|x_i|`` by the snapshot's ``abs_max`` and inflating the constant
    >=4x gives the margin used here, ``(d + 4) * 2**-21 * sum|w| *
    abs_max``, plus ``2**-100`` to absorb subnormal rounding, where the
    relative model breaks down.  The bound only needs to be *valid*, not
    tight: it sizes the exact-re-check candidate set and pads the
    retirement test, so looseness costs a few extra float64 re-scores,
    never correctness.
    """
    unit = float(dims + 4) * 2.0 ** -21
    return unit * weight_abs_sums * abs_max + 2.0 ** -100


def _f32_round_down(value: float) -> np.float32:
    """The largest float32 that is ``<= value``.

    The candidate threshold is computed in float64; comparing it against
    float32 scores must not round it *up* (that could drop a provable
    candidate), so nearest-rounding is corrected downward when needed.
    """
    rounded = np.float32(value)
    if float(rounded) > value:
        rounded = np.nextafter(rounded, np.float32(-np.inf))
    return rounded


def _f32_chunk_scores(
    values_f32: np.ndarray,
    weights_f32: np.ndarray,
    lo: int,
    hi: int,
    kernel: "native.NativeChunkKernel | None",
) -> "tuple[np.ndarray, np.ndarray]":
    """Fused score+bound pass of the fast lane over one chunk.

    Returns ``(scores, maxima)``: the ``(rows, queries)`` float32 score
    block and its per-query column maxima, computed in the same pass.
    Dispatches to the optional native kernel
    (:mod:`repro.core.native`) when built, else one BLAS ``sgemm`` plus
    a column-max reduction.
    """
    if kernel is not None:
        return kernel.score_chunk(values_f32, weights_f32, lo, hi)
    block = values_f32[lo:hi] @ weights_f32.T
    return block, block.max(axis=0)


def _iter_chunks(bounds: np.ndarray, k: int) -> Iterator["tuple[int, int]"]:
    """Yield ``(lo, hi)`` dense-row chunks aligned to layer boundaries.

    Consecutive layers are merged until a chunk holds at least
    ``max(k, _CHUNK_MIN_ROWS)`` rows, and the target doubles per chunk,
    so a scan touching ``m`` rows costs ``O(log m)`` python iterations.
    Chunk edges stay on layer edges, which keeps the retirement bound
    valid: everything beyond a chunk is dominated into some layer inside
    or before it.
    """
    num_layers = int(bounds.shape[0]) - 1
    n = int(bounds[num_layers])
    target = max(int(k), _CHUNK_MIN_ROWS)
    layer = 0
    lo = 0
    while lo < n:
        hi = lo
        while layer < num_layers and hi - lo < target:
            layer += 1
            hi = int(bounds[layer])
        yield lo, hi
        lo = hi
        target *= 2


def _chunk_answerable(
    compiled: CompiledDG,
    answerable: np.ndarray,
    where: WherePredicate | None,
    lo: int,
    hi: int,
    exclude: np.ndarray | None = None,
) -> np.ndarray:
    """The chunk's answerable mask, evaluating ``where`` once per record.

    Predicates always see the exact float64 vectors, never the fast
    lane's float32 copies.  Rows masked by ``exclude`` never reach the
    predicate: an overlay-deleted record must not leak to user code.
    """
    if where is None:
        return answerable[lo:hi]
    pseudo = compiled.pseudo_mask
    values = compiled.values
    block = np.zeros(hi - lo, dtype=bool)
    for offset in range(hi - lo):
        dense = lo + offset
        block[offset] = (
            not pseudo[dense]
            and (exclude is None or not exclude[dense])
            and bool(where(values[dense]))
        )
    answerable[lo:hi] = block
    return block


def _order_pairs(
    ids: np.ndarray, scores: np.ndarray, take: int
) -> "list[tuple[float, int]]":
    """Rank ``(score, id)`` pairs by the engine's ``(-score, id)`` rule."""
    order = np.lexsort((ids, -scores))[:take]
    return [
        (float(scores[i]), int(ids[i])) for i in order.tolist()
    ]


def _select_exact(
    ids: np.ndarray, scores: np.ndarray, k: int
) -> "list[tuple[float, int]]":
    """Exact top-k selection over float64 ``scores`` (ties kept, then ranked)."""
    available = int(scores.shape[0])
    take = min(k, available)
    if take == 0:
        return []
    if available > take:
        kth_value = np.partition(scores, available - take)[available - take]
        keep = scores >= kth_value
        ids, scores = ids[keep], scores[keep]
    return _order_pairs(ids, scores, take)


def batch_top_k(
    compiled: CompiledDG,
    functions: Sequence[ScoringFunction],
    k: int,
    *,
    where: WherePredicate | None = None,
    stats: Sequence[AccessCounter] | None = None,
    algorithm: str = BATCH_ALGORITHM,
    deadline: Deadline | None = None,
    exclude: np.ndarray | None = None,
) -> "list[TopKResult]":
    """Answer many top-k queries in one layer-progressive sweep.

    This is the *only* compiled execution path: every public entry point
    (:meth:`CompiledDG.top_k`, the compiled Travelers, the guard's
    compiled tier, serving reads, fabric workers) routes here, single
    queries as batches of one.  The kernel walks the snapshot's layer
    chunks in order; for each chunk it computes every still-active
    query's scores and the per-query chunk maximum in one fused pass
    (all-linear batches ride the float32 fast lane with an exact float64
    boundary re-check — see the module docstring — other monotone
    functions take one float64 ``score_many`` call per active query per
    chunk).  A query retires as soon as it provably cannot improve: by
    the layer invariant no unseen record can beat the last processed
    layer's maximum, so once ``k`` answerable records are banked and the
    running ``k``-th best *provably* exceeds that bound the remaining
    layers cannot contribute.  Ties on the k-th score are resolved
    exactly (ascending id), in both lanes.

    Results carry identical ids, identical float scores, and identical
    ``(-score, id)`` orderings to the reference
    :class:`~repro.core.advanced.AdvancedTraveler` per query.  Access
    tallies charge whole chunks (see module docstring) and are recorded
    per query in ``stats``.

    Parameters
    ----------
    compiled:
        The snapshot to query (plain or Extended; pseudo records never
        count toward ``k``).
    functions:
        One aggregate monotone scoring function per query.
    k:
        Answers per query (positive).
    where:
        Optional ``vector -> bool`` filter shared by the whole batch;
        evaluated once per scored record, not once per query.
    stats:
        Optional per-query counters, one per function.  Fresh counters
        are created when omitted.
    algorithm:
        Label stamped on the returned
        :class:`~repro.core.result.TopKResult` objects (batch-of-one
        wrappers pass their public engine names).
    deadline:
        Optional end-to-end :class:`~repro.resilience.deadline.Deadline`
        checked at every layer-chunk boundary; expiry raises
        :class:`~repro.errors.DeadlineExceeded` mid-sweep.  Chunks are
        the kernel's natural preemption points: within a chunk the work
        is one fused matrix pass, so checkpointing between them bounds
        overrun by a single chunk's scoring time.
    exclude:
        Optional boolean mask over *dense* rows (length ``num_records``);
        ``True`` rows are scanned — they still bound retirement exactly
        like pseudo records — but never reported and never shown to
        ``where``.  The base+delta overlay passes its deleted-row mask
        here, which is what keeps a masked base sweep exact: excluded
        rows keep bounding their dominated descendants, so the layer
        invariant's retirement argument is untouched.

    Peak memory is ``len(functions) * num_records * 4`` bytes of float32
    scores on the fast lane (``* 8`` float64 on the oracle lane); cap the
    batch size accordingly (the parallel executor defaults to 64-query
    sub-batches).
    """
    if k <= 0:
        raise ValueError("k must be positive")
    if compiled.stale:
        raise StaleSnapshotError(
            "CompiledDG is stale: the source DominantGraph mutated after "
            "compile(); rebuild the snapshot with graph.compile()"
        )
    if exclude is not None:
        if exclude.dtype != np.bool_ or exclude.shape != (
            compiled.num_records,
        ):
            raise ValueError(
                "exclude must be a boolean mask over the snapshot's "
                f"{compiled.num_records} dense rows"
            )
    num_queries = len(functions)
    if stats is None:
        counters = [AccessCounter() for _ in range(num_queries)]
    else:
        counters = list(stats)
        if len(counters) != num_queries:
            raise ValueError(
                f"stats must have one counter per function: "
                f"{len(counters)} != {num_queries}"
            )
    if num_queries == 0:
        return []
    if compiled.num_records == 0:
        return [
            TopKResult.from_pairs([], counters[q], algorithm=algorithm)
            for q in range(num_queries)
        ]

    weights: np.ndarray | None = None
    linear = [f for f in functions if isinstance(f, LinearFunction)]
    if len(linear) == num_queries:
        weights = np.stack([f.weights for f in linear])
        if int(weights.shape[1]) != int(compiled.values.shape[1]):
            raise ValueError(
                f"function dims {int(weights.shape[1])} != "
                f"snapshot dims {int(compiled.values.shape[1])}"
            )

    if weights is not None and _f32_lane_applies(compiled, weights):
        return _f32_lane(
            compiled, weights, k, where, counters, algorithm, deadline,
            exclude,
        )
    return _f64_lane(
        compiled, functions, weights, k, where, counters, algorithm,
        deadline, exclude,
    )


def _f32_lane_applies(compiled: CompiledDG, weights: np.ndarray) -> bool:
    """Fast-lane guard: enabled, and float32 cannot overflow.

    The margin model assumes finite float32 arithmetic; data or weights
    large enough to push ``dims * max|w| * max|x|`` near ``float32 max``
    (or already non-finite in float32) fall back to the float64 lane.
    """
    if not fast_lane_enabled():
        return False
    dims = int(weights.shape[1])
    headroom = float(np.finfo(np.float32).max) / 8.0
    scale = float(np.abs(weights).max(initial=0.0)) * compiled.abs_max()
    return dims * scale < headroom


def _f32_lane(
    compiled: CompiledDG,
    weights: np.ndarray,
    k: int,
    where: WherePredicate | None,
    counters: "list[AccessCounter]",
    algorithm: str,
    deadline: Deadline | None = None,
    exclude: np.ndarray | None = None,
) -> "list[TopKResult]":
    """The two-precision lane: float32 scan, exact float64 boundary re-check."""
    num_queries = int(weights.shape[0])
    values = compiled.values
    values_f32 = compiled._f32_values()
    weights_f32 = np.ascontiguousarray(weights, dtype=np.float32)
    ids_arr = compiled.record_ids
    pseudo = compiled.pseudo_mask
    n = int(values.shape[0])
    bounds = compiled.layer_bounds()
    margin = _f32_margin(
        int(weights.shape[1]), np.abs(weights).sum(axis=1), compiled.abs_max()
    )

    if where is None:
        answerable = ~pseudo if exclude is None else ~pseudo & ~exclude
    else:
        answerable = np.zeros(n, dtype=bool)

    neg_inf = np.float32(-np.inf)
    active = np.ones(num_queries, dtype=bool)
    topk32 = np.full((num_queries, k), neg_inf, dtype=np.float32)
    stop_prefix = np.full(num_queries, n, dtype=np.int64)
    # Per-chunk (lo, hi, act_idx, float32 score block) kept for the final
    # candidate re-check; chunks tile the scanned prefix contiguously.
    scanned: "list[tuple[int, int, np.ndarray, np.ndarray]]" = []
    ans_count = 0

    kernel = native.kernel()
    for lo, hi in _iter_chunks(bounds, k):
        if deadline is not None:
            deadline.check(stage="kernel")
        act_idx = np.flatnonzero(active)
        block32, chunk_max32 = _f32_chunk_scores(
            values_f32, weights_f32[act_idx], lo, hi, kernel
        )
        scanned.append((lo, hi, act_idx, block32))

        block_ids = ids_arr[lo:hi].copy()
        block_pseudo = int(pseudo[lo:hi].sum())
        for q in act_idx.tolist():
            counters[q].count_computed_batch(block_ids, pseudo=block_pseudo)

        ans_block = _chunk_answerable(
            compiled, answerable, where, lo, hi, exclude
        )
        num_answerable = int(ans_block.sum())
        if num_answerable:
            pool = np.concatenate(
                [topk32[act_idx], block32[ans_block].T], axis=1
            )
            topk32[act_idx] = np.partition(
                pool, int(pool.shape[1]) - k, axis=1
            )[:, -k:]
            ans_count += num_answerable
        # Column 0 of the kept slice is the running k-th best (row
        # minimum); all -inf until k answerable records have been seen.
        kth32 = topk32[act_idx, 0].astype(np.float64)
        marg = margin[act_idx]
        if hi >= n:
            done = np.ones(act_idx.size, dtype=bool)
        else:
            # Conservative retirement: the exact k-th is >= kth32 - marg
            # and no unseen exact score exceeds chunk_max32 + marg.
            done = (ans_count >= k) & (
                (kth32 - marg) > (chunk_max32.astype(np.float64) + marg)
            )
        retired = act_idx[done]
        stop_prefix[retired] = hi
        active[retired] = False
        if not active.any():
            break

    results: "list[TopKResult]" = []
    for q in range(num_queries):
        prefix = int(stop_prefix[q])
        threshold = float(topk32[q, 0]) - 2.0 * float(margin[q])
        threshold32 = _f32_round_down(threshold)
        cand: "list[np.ndarray]" = []
        for lo, hi, act_idx, block32 in scanned:
            if lo >= prefix:
                break
            column = block32[:, int(np.searchsorted(act_idx, q))]
            keep = np.flatnonzero(
                answerable[lo:hi] & (column >= threshold32)
            )
            if keep.size:
                cand.append(keep.astype(np.int64) + lo)
        if not cand:
            results.append(
                TopKResult.from_pairs([], counters[q], algorithm=algorithm)
            )
            continue
        rows = np.concatenate(cand)
        # Exact float64 boundary re-check: same elementwise-multiply +
        # np.sum reduction as LinearFunction.score_many, so the kept
        # scores are bit-identical to the reference engine's.
        exact = np.sum(values[rows] * weights[q], axis=1)
        results.append(
            TopKResult.from_pairs(
                _select_exact(ids_arr[rows], exact, k),
                counters[q],
                algorithm=algorithm,
            )
        )
    return results


def _f64_lane(
    compiled: CompiledDG,
    functions: Sequence[ScoringFunction],
    weights: np.ndarray | None,
    k: int,
    where: WherePredicate | None,
    counters: "list[AccessCounter]",
    algorithm: str,
    deadline: Deadline | None = None,
    exclude: np.ndarray | None = None,
) -> "list[TopKResult]":
    """The exact float64 lane: the parity oracle for every function class.

    Linear batches score with the same broadcast elementwise-multiply +
    ``np.sum`` reduction as ``LinearFunction.score_many`` (bit-identical
    rows by the determinism contract); other monotone functions get one
    ``score_many`` call per active query per chunk.
    """
    num_queries = len(functions)
    values = compiled.values
    ids_arr = compiled.record_ids
    pseudo = compiled.pseudo_mask
    n = int(values.shape[0])
    bounds = compiled.layer_bounds()

    if where is None:
        answerable = ~pseudo if exclude is None else ~pseudo & ~exclude
    else:
        answerable = np.zeros(n, dtype=bool)

    scores_all = np.empty((num_queries, n), dtype=np.float64)
    active = np.ones(num_queries, dtype=bool)
    topk = np.full((num_queries, k), -np.inf, dtype=np.float64)
    stop_prefix = np.full(num_queries, n, dtype=np.int64)
    ans_count = 0

    for lo, hi in _iter_chunks(bounds, k):
        if deadline is not None:
            deadline.check(stage="kernel")
        block = values[lo:hi]
        act_idx = np.flatnonzero(active)
        if weights is not None:
            block_scores = np.sum(
                block[None, :, :] * weights[act_idx, None, :], axis=2
            )
        else:
            block_scores = np.empty((act_idx.size, hi - lo), dtype=np.float64)
            for row, q in enumerate(act_idx.tolist()):
                block_scores[row] = functions[q].score_many(block)
        scores_all[act_idx, lo:hi] = block_scores
        # Fused score+bound: the chunk maximum comes off the block just
        # scored, before any filtering (pseudo records still bound their
        # children).
        chunk_max = block_scores.max(axis=1)

        # One owning copy per chunk, shared by every active query's
        # counter — a slice view would pin the snapshot buffer (fatal for
        # shared-memory workers) and get re-copied per query instead.
        block_ids = ids_arr[lo:hi].copy()
        block_pseudo = int(pseudo[lo:hi].sum())
        for q in act_idx.tolist():
            counters[q].count_computed_batch(block_ids, pseudo=block_pseudo)

        ans_block = _chunk_answerable(
            compiled, answerable, where, lo, hi, exclude
        )
        num_answerable = int(ans_block.sum())
        if num_answerable:
            pool = np.concatenate(
                [topk[act_idx], block_scores[:, ans_block]], axis=1
            )
            topk[act_idx] = np.partition(
                pool, int(pool.shape[1]) - k, axis=1
            )[:, -k:]
            ans_count += num_answerable
        # After any partition, column 0 of the kept slice is the k-th
        # best (row minimum); before the first partition every entry is
        # -inf, so column 0 is still the row minimum.
        kth = topk[act_idx, 0]
        if hi >= n:
            done = np.ones(act_idx.size, dtype=bool)
        else:
            # Strict, so score ties — which tie-break on ascending id —
            # are still resolved exactly.
            done = (ans_count >= k) & (kth > chunk_max)
        retired = act_idx[done]
        stop_prefix[retired] = hi
        active[retired] = False
        if not active.any():
            break

    results: "list[TopKResult]" = []
    for q in range(num_queries):
        prefix = int(stop_prefix[q])
        dense_idx = np.flatnonzero(answerable[:prefix])
        results.append(
            TopKResult.from_pairs(
                _select_exact(
                    ids_arr[dense_idx], scores_all[q, :prefix][dense_idx], k
                ),
                counters[q],
                algorithm=algorithm,
            )
        )
    return results
