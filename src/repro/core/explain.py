"""EXPLAIN for top-k queries: where did the traversal actually go?

``explain_top_k`` answers the operational questions the raw
:class:`~repro.core.result.TopKResult` cannot: how deep into the graph
did the query descend, how many records did each layer contribute to the
search space, how much of the cost was pseudo-record overhead, and how
close did the run come to the Theorem 3.2 ideal.  The CLI exposes it via
``python -m repro query --explain``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.advanced import AdvancedTraveler
from repro.core.functions import ScoringFunction
from repro.core.graph import DominantGraph
from repro.core.result import TopKResult
from repro.metrics.timing import Timer


@dataclass(frozen=True)
class LayerAccess:
    """Per-layer slice of a query's search space."""

    layer: int
    size: int
    accessed: int
    pseudo: int

    @property
    def fraction(self) -> float:
        """Share of the layer the query touched."""
        return self.accessed / self.size if self.size else 0.0


@dataclass(frozen=True)
class QueryExplain:
    """Full traversal profile of one top-k query."""

    result: TopKResult
    per_layer: tuple
    deepest_layer: int
    pseudo_accessed: int
    elapsed_seconds: float

    @property
    def total_accessed(self) -> int:
        """Total records scored (the paper's accessed-records metric)."""
        return self.result.stats.computed

    def format(self) -> str:
        """Aligned, human-readable profile."""
        k = len(self.result)
        lines = [
            f"top-{k}: {self.total_accessed} records scored "
            f"({self.pseudo_accessed} pseudo) in "
            f"{1000 * self.elapsed_seconds:.2f}ms; descended to layer "
            f"{self.deepest_layer + 1} of {len(self.per_layer)}",
            f"{'layer':>5} {'size':>7} {'accessed':>9} {'pseudo':>7} {'share':>7}",
        ]
        for entry in self.per_layer:
            if entry.accessed == 0 and entry.layer > self.deepest_layer:
                continue
            lines.append(
                f"{entry.layer + 1:>5} {entry.size:>7} {entry.accessed:>9} "
                f"{entry.pseudo:>7} {100 * entry.fraction:>6.1f}%"
            )
        untouched = sum(
            1 for entry in self.per_layer
            if entry.accessed == 0 and entry.layer > self.deepest_layer
        )
        if untouched:
            lines.append(f"  ... {untouched} deeper layers untouched")
        return "\n".join(lines)


def explain_top_k(
    graph: DominantGraph, function: ScoringFunction, k: int
) -> QueryExplain:
    """Run a top-k query and profile its search space per layer.

    Examples
    --------
    >>> from repro.core.builder import build_dominant_graph
    >>> from repro.core.dataset import Dataset
    >>> from repro.core.functions import LinearFunction
    >>> ds = Dataset([[2.0, 2.0], [1.0, 1.0], [3.0, 0.5]])
    >>> profile = explain_top_k(build_dominant_graph(ds), LinearFunction([0.5, 0.5]), 1)
    >>> profile.total_accessed
    2
    >>> profile.deepest_layer
    0
    """
    traveler = AdvancedTraveler(graph)
    with Timer() as timer:
        result = traveler.top_k(function, k)
    accessed_ids = result.stats.computed_ids

    per_layer = []
    deepest = 0
    pseudo_accessed = 0
    for index in range(graph.num_layers):
        members = graph.layer(index)
        touched = [rid for rid in members if rid in accessed_ids]
        pseudo = sum(1 for rid in touched if graph.is_pseudo(rid))
        pseudo_accessed += pseudo
        if touched:
            deepest = index
        per_layer.append(
            LayerAccess(
                layer=index,
                size=len(members),
                accessed=len(touched),
                pseudo=pseudo,
            )
        )
    return QueryExplain(
        result=result,
        per_layer=tuple(per_layer),
        deepest_layer=deepest,
        pseudo_accessed=pseudo_accessed,
        elapsed_seconds=timer.elapsed,
    )
