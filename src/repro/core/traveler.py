"""Basic Traveler: top-k query as DG traversal (paper Algorithm 1).

The algorithm scores the first DG layer into a candidate list ``CL``, then
repeatedly moves the best candidate into the result set ``RS`` and unlocks
children whose parents are *all* already in ``RS`` (Lemma 2.1: a child can
only be in the top-(n+1) once every parent is in the top-n).  After the
n-th answer, only the best ``k - n`` candidates are kept (paper lines
10-11); anything beaten by ``k - n`` candidates plus ``n`` answers cannot
be in the top-k.

Tie contract: answers follow the global ``(-score, id)`` ordering — among
equal scores, ascending record id wins, no matter where the records sit
in the graph.  A literal reading of Algorithm 1 does not guarantee this:
a record enters ``CL`` only after all its parents are answered, so among
equal-score records the pop order (and, at the k-th boundary, even the
answer *set*) would depend on unlock timing.  This traveler therefore
keeps popping while the best candidate still ties the k-th score,
truncates ``CL`` tie-inclusively, and — for functions that admit
dominated ties (``strictly_monotone`` false, e.g. ``MinFunction``) —
keeps unlocking through boundary-tied answers so a tied child of a tied
parent is reachable.  The over-collected answers are sorted by
``(-score, id)`` and cut to ``k``.  For strictly monotone functions a
dominated record scores strictly lower than its parent, so no extra
records are ever scored and the access tally of Theorem 3.1 is
unchanged.

The search space — the set of records scored — is exactly
``S1 = S2 ∪ S3`` of Theorem 3.1, which :mod:`repro.core.cost` verifies.
"""

from __future__ import annotations

import bisect

from repro.core.functions import ScoringFunction
from repro.core.graph import DominantGraph
from repro.core.result import TopKResult
from repro.metrics.counters import AccessCounter


class _CandidateList:
    """The sorted candidate list ``CL`` of Algorithm 1.

    Kept as a list of ``(-score, record_id)`` in ascending order behind a
    lazy-deletion head counter: ``pop_best`` advances ``_head`` instead of
    memmoving the whole list (``list.pop(0)`` is O(n), which made large
    candidate lists accidentally quadratic).  The dead prefix is compacted
    away once it dominates the list, so space stays proportional to the
    live entries.
    """

    def __init__(self) -> None:
        self._entries: list = []
        self._head = 0

    def __len__(self) -> int:
        return len(self._entries) - self._head

    def insert(self, score: float, record_id: int) -> None:
        bisect.insort(self._entries, (-score, record_id), lo=self._head)

    def pop_best(self) -> tuple:
        """Remove and return ``(score, record_id)`` of the best candidate."""
        neg_score, record_id = self._entries[self._head]
        self._head += 1
        if self._head > 64 and self._head * 2 >= len(self._entries):
            del self._entries[: self._head]
            self._head = 0
        return -neg_score, record_id

    def best_neg(self) -> float:
        """The ``-score`` key of the best live candidate (must be non-empty)."""
        return self._entries[self._head][0]

    def truncate(self, keep: int) -> None:
        """Keep the ``keep`` best candidates plus any tied with the last kept.

        Paper lines 10-11 keep exactly ``k - n``; keeping the boundary tie
        class as well costs nothing (those records are already scored) and
        is what makes the final ``(-score, id)`` tie-break exact: a
        candidate tied with the ``keep``-th best may still out-rank it by
        record id.  Every dropped candidate scores strictly below the last
        kept one and is beaten by ``k`` strictly better records, so it can
        never reach the top-k under any tie-break.
        """
        if keep <= 0:
            del self._entries[self._head:]
            return
        limit = self._head + keep
        if limit >= len(self._entries):
            return
        anchor = self._entries[limit - 1][0]
        while limit < len(self._entries) and self._entries[limit][0] == anchor:
            limit += 1
        del self._entries[limit:]

    def entries(self) -> list:
        """Snapshot of ``(score, record_id)`` pairs, best first."""
        return [(-neg, rid) for neg, rid in self._entries[self._head:]]


class BasicTraveler:
    """Algorithm 1 over a plain Dominant Graph.

    Parameters
    ----------
    graph:
        A DG without pseudo records.  Graphs with pseudo levels must use
        :class:`~repro.core.advanced.AdvancedTraveler`, which knows not to
        count pseudo records as answers.

    Examples
    --------
    >>> from repro.core.dataset import Dataset
    >>> from repro.core.builder import build_dominant_graph
    >>> from repro.core.functions import LinearFunction
    >>> ds = Dataset([[4.0, 1.0], [1.0, 4.0], [0.5, 0.5]])
    >>> result = BasicTraveler(build_dominant_graph(ds)).top_k(
    ...     LinearFunction([0.5, 0.5]), k=2)
    >>> sorted(result.ids)
    [0, 1]
    """

    name = "basic-traveler"

    def __init__(self, graph: DominantGraph) -> None:
        if graph.num_pseudo:
            raise ValueError(
                "BasicTraveler requires a plain DG; use AdvancedTraveler for "
                "graphs with pseudo records"
            )
        self._graph = graph

    @property
    def graph(self) -> DominantGraph:
        """The underlying index."""
        return self._graph

    def top_k(
        self,
        function: ScoringFunction,
        k: int,
        *,
        stats: AccessCounter | None = None,
    ) -> TopKResult:
        """Answer a top-k query for any aggregate monotone ``function``.

        Returns fewer than ``k`` answers only when the dataset holds fewer
        than ``k`` records.  ``stats`` lets a caller supply the counter
        that charges every scored record — the query guard passes a
        budget-enforcing subclass here.
        """
        if k <= 0:
            raise ValueError("k must be positive")
        graph = self._graph
        stats = stats if stats is not None else AccessCounter()
        candidates = _CandidateList()
        computed: set = set()

        # Line 1: score the whole first layer into CL, capped at k.
        for rid in sorted(graph.layer(0)):
            score = function(graph.vector(rid))
            stats.count_computed(rid)
            computed.add(rid)
            candidates.insert(score, rid)
        candidates.truncate(k)

        strict = bool(getattr(function, "strictly_monotone", False))
        answers: list = []
        in_result: set = set()
        kth_neg: float | None = None
        while len(candidates):
            # Once k answers are banked, only candidates tying the k-th
            # score can still matter; pops are non-increasing, so the
            # first strictly-worse peek ends the query.
            if kth_neg is not None and candidates.best_neg() > kth_neg:
                break
            # Lines 2/12: move the best candidate into RS.
            score, rid = candidates.pop_best()
            answers.append((score, rid))
            in_result.add(rid)
            if kth_neg is None and len(answers) == k:
                kth_neg = -score
            # Lines 5-9: unlock children whose parents are all answered.
            # After the k-th answer this continues only for functions that
            # admit dominated ties: a boundary-tied answer may then hide an
            # equal-score child that out-ranks it by record id.
            if kth_neg is None or not strict:
                for child in sorted(graph.children_of(rid)):
                    if child in computed:
                        continue
                    if any(parent not in in_result for parent in graph.parents_of(child)):
                        continue
                    child_score = function(graph.vector(child))
                    stats.count_computed(child)
                    computed.add(child)
                    candidates.insert(child_score, child)
            if kth_neg is None:
                # Lines 10-11: keep only the k-n best candidates (plus ties).
                candidates.truncate(k - len(answers))

        answers.sort(key=lambda pair: (-pair[0], pair[1]))
        return TopKResult.from_pairs(answers[:k], stats, algorithm=self.name)
