"""Basic Traveler: top-k query as DG traversal (paper Algorithm 1).

The algorithm scores the first DG layer into a candidate list ``CL``, then
repeatedly moves the best candidate into the result set ``RS`` and unlocks
children whose parents are *all* already in ``RS`` (Lemma 2.1: a child can
only be in the top-(n+1) once every parent is in the top-n).  After the
n-th answer, only the best ``k - n`` candidates are kept (paper lines
10-11); anything beaten by ``k - n`` candidates plus ``n`` answers cannot
be in the top-k.

The search space — the set of records scored — is exactly
``S1 = S2 ∪ S3`` of Theorem 3.1, which :mod:`repro.core.cost` verifies.
"""

from __future__ import annotations

import bisect

from repro.core.functions import ScoringFunction
from repro.core.graph import DominantGraph
from repro.core.result import TopKResult
from repro.metrics.counters import AccessCounter


class _CandidateList:
    """The sorted candidate list ``CL`` of Algorithm 1.

    Kept as a list of ``(-score, record_id)`` in ascending order behind a
    lazy-deletion head counter: ``pop_best`` advances ``_head`` instead of
    memmoving the whole list (``list.pop(0)`` is O(n), which made large
    candidate lists accidentally quadratic).  The dead prefix is compacted
    away once it dominates the list, so space stays proportional to the
    live entries.
    """

    def __init__(self) -> None:
        self._entries: list = []
        self._head = 0

    def __len__(self) -> int:
        return len(self._entries) - self._head

    def insert(self, score: float, record_id: int) -> None:
        bisect.insort(self._entries, (-score, record_id), lo=self._head)

    def pop_best(self) -> tuple:
        """Remove and return ``(score, record_id)`` of the best candidate."""
        neg_score, record_id = self._entries[self._head]
        self._head += 1
        if self._head > 64 and self._head * 2 >= len(self._entries):
            del self._entries[: self._head]
            self._head = 0
        return -neg_score, record_id

    def truncate(self, keep: int) -> None:
        """Keep only the ``keep`` best candidates (paper lines 10-11)."""
        limit = self._head + max(keep, 0)
        if limit < len(self._entries):
            del self._entries[limit:]

    def entries(self) -> list:
        """Snapshot of ``(score, record_id)`` pairs, best first."""
        return [(-neg, rid) for neg, rid in self._entries[self._head:]]


class BasicTraveler:
    """Algorithm 1 over a plain Dominant Graph.

    Parameters
    ----------
    graph:
        A DG without pseudo records.  Graphs with pseudo levels must use
        :class:`~repro.core.advanced.AdvancedTraveler`, which knows not to
        count pseudo records as answers.

    Examples
    --------
    >>> from repro.core.dataset import Dataset
    >>> from repro.core.builder import build_dominant_graph
    >>> from repro.core.functions import LinearFunction
    >>> ds = Dataset([[4.0, 1.0], [1.0, 4.0], [0.5, 0.5]])
    >>> result = BasicTraveler(build_dominant_graph(ds)).top_k(
    ...     LinearFunction([0.5, 0.5]), k=2)
    >>> sorted(result.ids)
    [0, 1]
    """

    name = "basic-traveler"

    def __init__(self, graph: DominantGraph) -> None:
        if graph.num_pseudo:
            raise ValueError(
                "BasicTraveler requires a plain DG; use AdvancedTraveler for "
                "graphs with pseudo records"
            )
        self._graph = graph

    @property
    def graph(self) -> DominantGraph:
        """The underlying index."""
        return self._graph

    def top_k(
        self,
        function: ScoringFunction,
        k: int,
        *,
        stats: AccessCounter | None = None,
    ) -> TopKResult:
        """Answer a top-k query for any aggregate monotone ``function``.

        Returns fewer than ``k`` answers only when the dataset holds fewer
        than ``k`` records.  ``stats`` lets a caller supply the counter
        that charges every scored record — the query guard passes a
        budget-enforcing subclass here.
        """
        if k <= 0:
            raise ValueError("k must be positive")
        graph = self._graph
        stats = stats if stats is not None else AccessCounter()
        candidates = _CandidateList()
        computed: set = set()

        # Line 1: score the whole first layer into CL, capped at k.
        for rid in sorted(graph.layer(0)):
            score = function(graph.vector(rid))
            stats.count_computed(rid)
            computed.add(rid)
            candidates.insert(score, rid)
        candidates.truncate(k)

        answers: list = []
        in_result: set = set()
        while len(answers) < k and len(candidates):
            # Lines 2/12: move the best candidate into RS.
            score, rid = candidates.pop_best()
            answers.append((score, rid))
            in_result.add(rid)
            if len(answers) == k:
                break
            # Lines 5-9: unlock children whose parents are all answered.
            for child in sorted(graph.children_of(rid)):
                if child in computed:
                    continue
                if any(parent not in in_result for parent in graph.parents_of(child)):
                    continue
                child_score = function(graph.vector(child))
                stats.count_computed(child)
                computed.add(child)
                candidates.insert(child_score, child)
            # Lines 10-11: keep only the k-n best candidates.
            candidates.truncate(k - len(answers))

        return TopKResult.from_pairs(answers, stats, algorithm=self.name)
