"""Base+delta overlay: O(changes) publish over an immutable CompiledDG.

A full ``graph.compile()`` costs O(n) no matter how small the mutation
batch was, which caps sustained write throughput (see
``docs/performance.md``).  This module supplies the LSM-style
alternative: keep the last compiled snapshot as an immutable **base**
and describe everything that happened since as a small immutable
:class:`DeltaOverlay` — the freshly inserted records (an uncompiled
mini-index: ids plus raw float64 vectors) and a deletion set of base
dense rows.  Publishing a mutation then costs O(overlay), not O(n).

Query parity argument
---------------------
:func:`overlay_batch_top_k` answers ``base+delta`` queries bit-identical
to a full recompile, by construction:

1. **Base sweep.**  The batch kernel runs over the base with the
   overlay's deleted rows passed as the ``exclude`` mask.  Excluded rows
   are still scanned and still bound retirement (exactly like pseudo
   records), so the layer-invariant argument that makes the kernel exact
   is untouched; they are merely never reported.  The sweep therefore
   returns the exact top-k of the *surviving base records* for any
   monotone function.
2. **Delta scan.**  Overlay records are scored exhaustively with
   ``function.score_many`` — the same reduction the kernel's float64
   boundary re-check uses — so a delta record's score is bit-identical
   to what a recompiled snapshot would assign it (the ``score_many``
   determinism contract: a row's score never depends on its neighbours).
3. **Merge.**  Any record outside the base top-k is beaten by ``k``
   surviving base records, all of which are in the merged pool, so the
   canonical ``(-score, id)`` selection over (base top-k) ∪ (delta)
   is the global top-k.

``tests/test_overlay.py`` enforces this with a hypothesis property test
over random interleaved insert/delete/mark_deleted sequences, and the
serving concurrency suite re-checks it against from-scratch rebuilds.

Immutability discipline
-----------------------
A published overlay is frozen: every array has its write flag cleared,
and the ``overlay-discipline`` lint rule flags any assignment through a
name bound from :meth:`OverlayBuilder.freeze`.  Writers accumulate
changes in a mutable :class:`~repro.core.maintenance.OverlayBuilder`
and freeze a *new* overlay per publish — O(overlay size), which the
serving layer caps.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.compiled import CompiledDG, _select_exact, batch_top_k
from repro.core.functions import ScoringFunction, WherePredicate
from repro.core.result import TopKResult
from repro.metrics.counters import AccessCounter
from repro.resilience.deadline import Deadline

#: Algorithm label stamped on merged base+delta results.
OVERLAY_ALGORITHM = "compiled-batch+delta"


class DeltaOverlay:
    """Immutable record of everything since the last compiled base.

    Attributes
    ----------
    delta_ids:
        Record ids inserted since the base was compiled (int64, sorted
        ascending).
    delta_values:
        Their float64 vectors, one row per ``delta_ids`` entry.
    deleted_rows:
        Dense row indices *into the base snapshot* whose records were
        deleted (or re-inserted, superseding the base row), sorted
        ascending.
    created_at:
        Monotonic timestamp of the oldest unfolded change, for the
        compactor's age threshold.

    All arrays are frozen at construction; a publish hands readers this
    object and never touches it again (the ``overlay-discipline`` lint
    rule enforces that).  The dense deleted *mask* is derived lazily so
    building an overlay stays O(changes), not O(base).
    """

    def __init__(
        self,
        *,
        delta_ids: np.ndarray,
        delta_values: np.ndarray,
        deleted_rows: np.ndarray,
        created_at: float = 0.0,
    ) -> None:
        if int(delta_ids.shape[0]) != int(delta_values.shape[0]):
            raise ValueError("delta_ids and delta_values disagree on length")
        self.delta_ids = delta_ids
        self.delta_values = delta_values
        self.deleted_rows = deleted_rows
        self.created_at = float(created_at)
        # Lazy per-snapshot cache, keyed by the base's row count.
        self._deleted_mask_cache: np.ndarray | None = None
        for array in (delta_ids, delta_values, deleted_rows):
            array.setflags(write=False)

    @property
    def delta_count(self) -> int:
        """How many records the overlay adds on top of the base."""
        return int(self.delta_ids.shape[0])

    @property
    def deleted_count(self) -> int:
        """How many base rows the overlay masks out."""
        return int(self.deleted_rows.shape[0])

    @property
    def size(self) -> int:
        """Total overlay weight — what the serving layer caps."""
        return self.delta_count + self.deleted_count

    def deleted_mask(self, num_rows: int) -> np.ndarray | None:
        """Dense boolean mask over the base's rows, or ``None`` if empty.

        Built once per overlay (the base row count never changes while
        this overlay is live) and handed to the kernel's ``exclude``
        parameter verbatim.
        """
        if self.deleted_count == 0:
            return None
        if self._deleted_mask_cache is None:
            mask = np.zeros(num_rows, dtype=bool)
            mask[self.deleted_rows] = True
            mask.setflags(write=False)
            self._deleted_mask_cache = mask
        return self._deleted_mask_cache

    def __repr__(self) -> str:
        return (
            f"DeltaOverlay(delta={self.delta_count}, "
            f"deleted={self.deleted_count})"
        )


def alive_record_ids(
    compiled: CompiledDG, overlay: DeltaOverlay | None = None
) -> np.ndarray:
    """Sorted ids of every answerable record in ``base+overlay``.

    The overlay-aware replacement for reading
    ``compiled.record_ids[~pseudo_mask]`` directly — with a live overlay
    the base alone over-reports deletions-in-flight and misses fresh
    inserts.
    """
    mask = ~compiled.pseudo_mask
    if overlay is not None:
        deleted = overlay.deleted_mask(compiled.num_records)
        if deleted is not None:
            mask = mask & ~deleted
    ids = compiled.record_ids[mask]
    if overlay is not None and overlay.delta_count:
        ids = np.concatenate([ids, overlay.delta_ids])
    out = np.sort(ids)
    return out


def _delta_candidates(
    overlay: DeltaOverlay, where: WherePredicate | None
) -> "tuple[np.ndarray, np.ndarray]":
    """The overlay rows eligible to answer, as ``(ids, writable block)``.

    The block is a fresh writable copy: scoring functions are entitled
    to writable inputs (the scan tier makes the same guarantee), and the
    published overlay arrays themselves stay frozen.
    """
    block = np.array(overlay.delta_values, copy=True)
    ids = overlay.delta_ids
    if where is None:
        return ids, block
    keep = np.fromiter(
        (i for i in range(int(ids.shape[0])) if bool(where(block[i]))),
        dtype=np.int64,
    )
    return ids[keep], block[keep]


def overlay_batch_top_k(
    compiled: CompiledDG,
    overlay: DeltaOverlay,
    functions: Sequence[ScoringFunction],
    k: int,
    *,
    where: WherePredicate | None = None,
    stats: Sequence[AccessCounter] | None = None,
    algorithm: str = OVERLAY_ALGORITHM,
    deadline: Deadline | None = None,
) -> "list[TopKResult]":
    """Answer many queries over ``base+overlay``, bit-identical to a
    recompile.

    Runs the batch kernel over the base with the overlay's deletions as
    the ``exclude`` mask, scores the overlay's records exhaustively, and
    merges by the canonical ``(-score, id)`` contract (see the module
    docstring for the exactness argument).  ``deadline`` is checked at
    kernel chunk boundaries and again before the delta scan and merge.
    """
    num_queries = len(functions)
    if stats is None:
        counters = [AccessCounter() for _ in range(num_queries)]
    else:
        counters = list(stats)
    base_results = batch_top_k(
        compiled,
        functions,
        k,
        where=where,
        stats=counters,
        algorithm=algorithm,
        deadline=deadline,
        exclude=overlay.deleted_mask(compiled.num_records),
    )
    if overlay.delta_count == 0 or num_queries == 0:
        return base_results
    if deadline is not None:
        deadline.check(stage="overlay-merge")
    delta_ids, delta_block = _delta_candidates(overlay, where)
    merged: "list[TopKResult]" = []
    for q, base in enumerate(base_results):
        counters[q].count_computed_batch(overlay.delta_ids, pseudo=0)
        if int(delta_ids.shape[0]) == 0:
            merged.append(base)
            continue
        delta_scores = functions[q].score_many(delta_block)
        pool_ids = np.concatenate(
            [np.asarray(base.ids, dtype=np.int64), delta_ids]
        )
        pool_scores = np.concatenate(
            [np.asarray(base.scores, dtype=np.float64), delta_scores]
        )
        merged.append(
            TopKResult.from_pairs(
                _select_exact(pool_ids, pool_scores, k),
                counters[q],
                algorithm=algorithm,
            )
        )
    return merged


def overlay_top_k(
    compiled: CompiledDG,
    overlay: DeltaOverlay,
    function: ScoringFunction,
    k: int,
    *,
    where: WherePredicate | None = None,
    stats: AccessCounter | None = None,
    algorithm: str = OVERLAY_ALGORITHM,
    deadline: Deadline | None = None,
) -> TopKResult:
    """Single-query overlay read: a batch of one through the merge path."""
    (result,) = overlay_batch_top_k(
        compiled,
        overlay,
        [function],
        k,
        where=where,
        stats=None if stats is None else [stats],
        algorithm=algorithm,
        deadline=deadline,
    )
    return result
