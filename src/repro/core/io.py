"""Index persistence: save/load a Dominant Graph to disk.

The DG is an offline-built index ("DG is stored independently as the
indexing structure for the record set"), so a real deployment builds it
once and ships it next to the data.  The on-disk format is a single
``.npz`` archive holding the dataset values, the layer assignment, the
edge list, and the pseudo-record vectors — all numpy arrays, so loading
is one ``np.load`` with no custom parsing.

Format (npz keys)
-----------------
``values``         (n, m) float64 — the dataset (attribute names too)
``attribute_names`` (m,) str
``record_ids``     (r,) intp — indexed ids, reals then pseudos
``layer_of``       (r,) intp — 0-based layer per indexed id
``edges``          (e, 2) intp — parent, child pairs
``pseudo_ids``     (p,) intp — which indexed ids are pseudo
``pseudo_vectors`` (p, m) float64 — their vectors
``format_version`` () int
"""

from __future__ import annotations

import os

import numpy as np

from repro.core.dataset import Dataset
from repro.core.graph import DominantGraph

FORMAT_VERSION = 1


def save_graph(graph: DominantGraph, path: str) -> str:
    """Serialize a graph (and its dataset) to ``path`` (.npz appended).

    Returns the path actually written.

    Examples
    --------
    >>> import tempfile, os
    >>> from repro.core.builder import build_dominant_graph
    >>> ds = Dataset([[1.0, 2.0], [2.0, 1.0], [0.5, 0.5]])
    >>> graph = build_dominant_graph(ds)
    >>> path = save_graph(graph, tempfile.mktemp())
    >>> load_graph(path).layer_sizes()
    [2, 1]
    """
    record_ids = list(graph.iter_records())
    layer_of = [graph.layer_of(rid) for rid in record_ids]
    edges = [
        (parent, child)
        for parent in record_ids
        for child in sorted(graph.children_of(parent))
    ]
    pseudo_ids = [rid for rid in record_ids if graph.is_pseudo(rid)]
    pseudo_vectors = (
        np.vstack([graph.vector(rid) for rid in pseudo_ids])
        if pseudo_ids
        else np.empty((0, graph.dataset.dims))
    )
    if not path.endswith(".npz"):
        path = path + ".npz"
    np.savez_compressed(
        path,
        values=graph.dataset.values,
        attribute_names=np.asarray(graph.dataset.attribute_names, dtype=str),
        record_ids=np.asarray(record_ids, dtype=np.intp),
        layer_of=np.asarray(layer_of, dtype=np.intp),
        edges=np.asarray(edges, dtype=np.intp).reshape(-1, 2),
        pseudo_ids=np.asarray(pseudo_ids, dtype=np.intp),
        pseudo_vectors=pseudo_vectors,
        format_version=np.asarray(FORMAT_VERSION),
    )
    return path


def load_graph(path: str, validate: bool = False) -> DominantGraph:
    """Load a graph previously written by :func:`save_graph`.

    Parameters
    ----------
    path:
        The ``.npz`` file (extension optional).
    validate:
        Run the full invariant check after loading (slow on big indexes;
        useful when the file's provenance is uncertain).
    """
    if not path.endswith(".npz") and not os.path.exists(path):
        path = path + ".npz"
    with np.load(path, allow_pickle=False) as archive:
        version = int(archive["format_version"])
        if version != FORMAT_VERSION:
            raise ValueError(
                f"unsupported index format version {version} "
                f"(this build reads {FORMAT_VERSION})"
            )
        dataset = Dataset(
            archive["values"],
            attribute_names=[str(a) for a in archive["attribute_names"]],
        )
        graph = DominantGraph(dataset)
        pseudo_ids = archive["pseudo_ids"]
        pseudo_vectors = archive["pseudo_vectors"]
        # Re-register pseudo vectors under their original ids (they may be
        # non-contiguous after maintenance merges).
        for pid, vector in zip(pseudo_ids.tolist(), pseudo_vectors):
            graph.register_pseudo_record(int(pid), vector)

        for rid, layer in zip(archive["record_ids"].tolist(),
                              archive["layer_of"].tolist()):
            graph.place_record(int(rid), int(layer))
        for parent, child in archive["edges"].tolist():
            graph.add_edge(int(parent), int(child))
    if validate:
        graph.validate()
    return graph
