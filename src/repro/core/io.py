"""Index persistence: corruption-safe save/load of a Dominant Graph.

The DG is an offline-built index ("DG is stored independently as the
indexing structure for the record set"), so a real deployment builds it
once and ships it next to the data — which means the load path is a trust
boundary: the file may be truncated by a crashed copy, bit-flipped by bad
storage, produced by an older build, or hand-edited.  This module makes
every one of those cases either a structured
:class:`~repro.errors.IndexCorruptionError` naming the damaged array, or
(opt-in) a repair that rebuilds the graph from the surviving ``values``
matrix.  A damaged file can never reach query code.

Defenses, in the order the load path applies them:

1. **Atomic writes** — :func:`save_graph` writes to a temp file in the
   same directory and ``os.replace``\\ s it over the target, so readers
   never observe a half-written archive.
2. **Format-version negotiation** — ``format_version`` is read first;
   version-1 archives (pre-manifest) still load, unknown versions raise.
3. **Per-array SHA-256 manifest** — version-2 archives carry a digest of
   every data array; any byte damage that survives the zip CRC is caught
   here and attributed to the specific array.
4. **Structural validation** — shapes, dtypes, finiteness, id ranges,
   duplicate/dangling/non-consecutive edges, and layer contiguity are
   checked *before* graph reconstruction, so a malformed archive raises a
   clear typed error instead of an opaque numpy ``IndexError``.
5. **Deep verification (opt-in)** — ``load_graph(..., verify=True)`` runs
   :func:`repro.core.verify.verify_graph` over the reconstructed graph
   (dominance-complete, slow on big indexes).
6. **Repair** — ``load_graph(..., repair=True)`` or :func:`repair_graph`
   rebuilds the graph from whatever arrays survive, preferring the
   recorded membership when ``record_ids``/``pseudo_ids`` are intact and
   falling back to re-indexing every dataset row.  Repairs emit
   :class:`~repro.errors.DegradedResultWarning` and report what was lost.

Format (npz keys)
-----------------
``values``          (n, m) float64 — the dataset (attribute names too)
``attribute_names`` (m,) str
``record_ids``      (r,) intp — indexed ids, reals then pseudos
``layer_of``        (r,) intp — 0-based layer per indexed id
``edges``           (e, 2) intp — parent, child pairs
``pseudo_ids``      (p,) intp — which indexed ids are pseudo
``pseudo_vectors``  (p, m) float64 — their vectors
``manifest_names``  (a,) str — data arrays covered by the manifest
``manifest_sha256`` (a,) str — matching SHA-256 hex digests
``format_version``  () int
"""

from __future__ import annotations

import hashlib
import os
import struct
import warnings
import zipfile
import zlib

import numpy as np

from repro.core.dataset import Dataset
from repro.core.graph import DominantGraph
from repro.errors import DegradedResultWarning, IndexCorruptionError

FORMAT_VERSION = 2
#: Versions this build can read.  Version 1 lacks the checksum manifest;
#: it still loads (structural validation only).
SUPPORTED_VERSIONS = (1, 2)

#: Data arrays every archive must carry: name -> (dtype kinds, ndim).
_REQUIRED = {
    "values": ("f", 2),
    "attribute_names": ("U", 1),
    "record_ids": ("iu", 1),
    "layer_of": ("iu", 1),
    "edges": ("iu", 2),
    "pseudo_ids": ("iu", 1),
    "pseudo_vectors": ("f", 2),
}
_MANIFEST_KEYS = ("manifest_names", "manifest_sha256")

#: Failure modes np.load / zipfile surface for damaged archives.
_ARCHIVE_ERRORS = (
    zipfile.BadZipFile,
    zlib.error,
    struct.error,
    EOFError,
    OSError,
    ValueError,
)


def _digest(array: np.ndarray) -> str:
    """SHA-256 over an array's dtype, shape, and raw bytes."""
    h = hashlib.sha256()
    h.update(str(array.dtype).encode())
    h.update(str(array.shape).encode())
    h.update(np.ascontiguousarray(array).tobytes())
    return h.hexdigest()


def compute_manifest(payload: dict) -> tuple:
    """``(names, digests)`` manifest over a payload's data arrays.

    Covers every key except the manifest itself and ``format_version``
    (excluded so version negotiation can run before integrity checks).
    Shared with :mod:`repro.testing.faults`, which uses it to re-sign
    deliberately tampered archives.
    """
    names = sorted(
        key
        for key in payload
        if key not in _MANIFEST_KEYS and key != "format_version"
    )
    digests = [
        _digest(np.asarray(payload[key]))  # repro: noqa[dtype-discipline] -- the digest must cover each array exactly as stored, whatever its dtype
        for key in names
    ]
    return names, digests


def fsync_directory(directory: str) -> None:
    """fsync a directory so a just-renamed file survives power loss.

    ``os.replace`` is atomic against concurrent readers but the rename
    itself lives in the directory inode, which the kernel may still be
    holding in cache when the power goes; syncing the directory pins it.
    Platforms whose directories cannot be opened/fsynced (some network
    filesystems, Windows) are silently skipped — atomicity still holds,
    only power-loss durability is best-effort there.
    """
    try:
        fd = os.open(directory or ".", os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def payload_from_graph(graph: DominantGraph) -> dict:
    """The canonical serialized form of a graph: the seven data arrays.

    This is the exact array vocabulary of the npz format (see the module
    docstring), shared by :func:`save_graph` and the binary store format
    (:mod:`repro.store.graphstore`) so both containers hold byte-for-byte
    the same payload and validate through the same pipeline.
    """
    record_ids = list(graph.iter_records())
    layer_of = [graph.layer_of(rid) for rid in record_ids]
    edges = [
        (parent, child)
        for parent in record_ids
        for child in sorted(graph.children_of(parent))
    ]
    pseudo_ids = [rid for rid in record_ids if graph.is_pseudo(rid)]
    pseudo_vectors = (
        np.vstack([graph.vector(rid) for rid in pseudo_ids])
        if pseudo_ids
        else np.empty((0, graph.dataset.dims), dtype=np.float64)
    )
    return {
        "values": np.asarray(graph.dataset.values, dtype=np.float64),
        "attribute_names": np.asarray(graph.dataset.attribute_names, dtype=str),
        "record_ids": np.asarray(record_ids, dtype=np.intp),
        "layer_of": np.asarray(layer_of, dtype=np.intp),
        "edges": np.asarray(edges, dtype=np.intp).reshape(-1, 2),
        "pseudo_ids": np.asarray(pseudo_ids, dtype=np.intp),
        "pseudo_vectors": np.asarray(pseudo_vectors, dtype=np.float64),
    }


def graph_from_payload(payload: dict, path: str) -> DominantGraph:
    """Validate a payload dict and reconstruct the graph from it.

    Runs the full structural validation (shapes, dtypes, id ranges,
    edge/layer invariants) before any construction, raising
    :class:`~repro.errors.IndexCorruptionError` naming the damaged
    array; ``path`` only labels errors.  Integrity (checksums) is the
    *container's* job and must happen before this is called.
    """
    _validate_payload(payload, path)
    return _construct(payload, path)


def save_graph(graph: DominantGraph, path: str, *, durable: bool = False) -> str:
    """Serialize a graph (and its dataset) to ``path`` (.npz appended).

    The write is atomic: the archive is assembled in a temp file next to
    the target and renamed over it, so a crash mid-write leaves the old
    index intact and readers never see a torn file.  With
    ``durable=True`` the temp file is fsynced before the rename and the
    directory after it, so the finished archive also survives power loss
    — the write-ahead-logged checkpoints of :mod:`repro.serve` require
    this; plain tooling saves default to fast.  Returns the path
    actually written.

    Examples
    --------
    >>> import tempfile, os
    >>> from repro.core.builder import build_dominant_graph
    >>> ds = Dataset([[1.0, 2.0], [2.0, 1.0], [0.5, 0.5]])
    >>> graph = build_dominant_graph(ds)
    >>> path = save_graph(graph, tempfile.mktemp())
    >>> load_graph(path).layer_sizes()
    [2, 1]
    """
    payload = payload_from_graph(graph)
    names, digests = compute_manifest(payload)
    payload["manifest_names"] = np.asarray(names, dtype=str)
    payload["manifest_sha256"] = np.asarray(digests, dtype=str)
    payload["format_version"] = np.asarray(FORMAT_VERSION, dtype=np.int64)

    if not path.endswith(".npz"):
        path = path + ".npz"
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "wb") as handle:
            np.savez_compressed(handle, **payload)
            if durable:
                handle.flush()
                os.fsync(handle.fileno())
        os.replace(tmp, path)
        if durable:
            fsync_directory(os.path.dirname(os.path.abspath(path)))
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)
    return path


# ----------------------------------------------------------------------
# Load-path checks
# ----------------------------------------------------------------------
def _read_payload(path: str) -> dict:
    """Read every array of an archive, attributing failures per array."""
    try:
        archive = np.load(path, allow_pickle=False)
    except FileNotFoundError:
        raise
    except _ARCHIVE_ERRORS as exc:
        raise IndexCorruptionError(
            f"unreadable index archive: {exc}", path=path
        ) from exc
    payload: dict = {}
    with archive:
        for key in archive.files:
            try:
                payload[key] = archive[key]
            except _ARCHIVE_ERRORS as exc:
                raise IndexCorruptionError(
                    f"array is unreadable: {exc}", path=path, array=key
                ) from exc
    return payload


def _negotiate_version(payload: dict, path: str) -> int:
    if "format_version" not in payload:
        raise IndexCorruptionError(
            "missing format_version", path=path, array="format_version"
        )
    try:
        version = int(payload["format_version"])
    except (TypeError, ValueError) as exc:
        raise IndexCorruptionError(
            f"format_version is not an integer: {exc}",
            path=path,
            array="format_version",
        ) from exc
    if version not in SUPPORTED_VERSIONS:
        raise IndexCorruptionError(
            f"unsupported index format version {version} "
            f"(this build reads {SUPPORTED_VERSIONS})",
            path=path,
            array="format_version",
        )
    return version


def _verify_manifest(payload: dict, path: str) -> None:
    """Check every data array against the stored SHA-256 manifest."""
    for key in _MANIFEST_KEYS:
        if key not in payload:
            raise IndexCorruptionError(
                "missing checksum manifest", path=path, array=key
            )
    names = [str(name) for name in payload["manifest_names"]]
    digests = [str(digest) for digest in payload["manifest_sha256"]]
    if len(names) != len(digests):
        raise IndexCorruptionError(
            "manifest names and digests differ in length",
            path=path,
            array="manifest_names",
        )
    for name, digest in zip(names, digests):
        if name not in payload:
            raise IndexCorruptionError(
                "array listed in manifest but absent", path=path, array=name
            )
        if _digest(np.asarray(payload[name])) != digest:  # repro: noqa[dtype-discipline] -- verification must hash the array exactly as loaded, whatever its dtype
            raise IndexCorruptionError(
                "checksum mismatch", path=path, array=name
            )
    missing = [name for name in _REQUIRED if name not in names]
    if missing:
        raise IndexCorruptionError(
            "required array not covered by the manifest",
            path=path,
            array=missing[0],
        )


def _validate_payload(payload: dict, path: str) -> None:
    """Shape/dtype/id-range validation, before any graph construction."""

    def bad(array: str, reason: str) -> None:
        raise IndexCorruptionError(reason, path=path, array=array)

    for name, (kinds, ndim) in _REQUIRED.items():
        if name not in payload:
            bad(name, "required array missing")
        array = payload[name]
        if array.ndim != ndim:
            bad(name, f"expected a {ndim}-d array, got {array.ndim}-d")
        if array.dtype.kind not in kinds:
            bad(name, f"unexpected dtype {array.dtype}")

    values = payload["values"]
    if values.shape[0] == 0 or values.shape[1] == 0:
        bad("values", "empty value matrix")
    if not np.all(np.isfinite(values)):
        bad("values", "non-finite attribute values (NaN/inf)")
    n, dims = values.shape
    if payload["attribute_names"].shape[0] != dims:
        bad(
            "attribute_names",
            f"{payload['attribute_names'].shape[0]} names for {dims} attributes",
        )

    record_ids = payload["record_ids"]
    layer_of = payload["layer_of"]
    if layer_of.shape != record_ids.shape:
        bad("layer_of", "length differs from record_ids")
    ids = record_ids.tolist()
    id_set = set(ids)
    if len(id_set) != len(ids):
        bad("record_ids", "duplicate record ids")

    pseudo_ids = payload["pseudo_ids"]
    pseudo_vectors = payload["pseudo_vectors"]
    pseudo_set = set(pseudo_ids.tolist())
    if len(pseudo_set) != pseudo_ids.shape[0]:
        bad("pseudo_ids", "duplicate pseudo ids")
    if not pseudo_set <= id_set:
        bad("pseudo_ids", "pseudo id not among record_ids")
    if pseudo_vectors.shape != (pseudo_ids.shape[0], dims):
        bad(
            "pseudo_vectors",
            f"expected shape ({pseudo_ids.shape[0]}, {dims}), "
            f"got {pseudo_vectors.shape}",
        )
    if pseudo_vectors.size and not np.all(np.isfinite(pseudo_vectors)):
        bad("pseudo_vectors", "non-finite pseudo vector (NaN/inf)")

    out_of_range = [
        rid for rid in id_set - pseudo_set if not 0 <= rid < n
    ]
    if out_of_range:
        bad(
            "record_ids",
            f"real record id {out_of_range[0]} outside dataset rows 0..{n - 1}",
        )
    converted_out_of_range = [
        rid for rid in pseudo_set if rid < 0
    ]
    if converted_out_of_range:
        bad("pseudo_ids", f"negative pseudo id {converted_out_of_range[0]}")

    if record_ids.size:
        layers = layer_of.tolist()
        if min(layers) < 0:
            bad("layer_of", "negative layer index")
        present = set(layers)
        if present != set(range(max(present) + 1)):
            bad("layer_of", "layer indices are not contiguous from 0")

    edges = payload["edges"]
    if edges.size:
        pairs = [tuple(edge) for edge in edges.tolist()]
        if len(set(pairs)) != len(pairs):
            bad("edges", "duplicate edges")
        layer_map = dict(zip(ids, layer_of.tolist()))
        for parent, child in pairs:
            if parent not in id_set or child not in id_set:
                dangling = parent if parent not in id_set else child
                bad("edges", f"dangling edge endpoint {dangling}")
            if layer_map[child] != layer_map[parent] + 1:
                bad(
                    "edges",
                    f"edge {parent}->{child} does not span consecutive layers",
                )


def _construct(payload: dict, path: str) -> DominantGraph:
    """Rebuild the graph object from a validated payload."""
    try:
        dataset = Dataset(
            payload["values"],
            attribute_names=[str(a) for a in payload["attribute_names"]],
        )
        graph = DominantGraph(dataset)
        # Re-register pseudo vectors under their original ids (they may be
        # non-contiguous after maintenance merges).  Ids below the dataset
        # size are real records converted by mark_deleted (Section V-B).
        for pid, vector in zip(
            payload["pseudo_ids"].tolist(), payload["pseudo_vectors"]
        ):
            if pid < len(dataset):
                graph.convert_to_pseudo(int(pid))
            else:
                graph.register_pseudo_record(int(pid), vector)
        for rid, layer in zip(
            payload["record_ids"].tolist(), payload["layer_of"].tolist()
        ):
            graph.place_record(int(rid), int(layer))
        for parent, child in payload["edges"].tolist():
            graph.add_edge(int(parent), int(child))
    except (KeyError, ValueError, IndexError) as exc:
        raise IndexCorruptionError(
            f"index reconstruction failed: {exc}", path=path
        ) from exc
    return graph


def load_graph(
    path: str,
    validate: bool = False,
    *,
    verify: bool = False,
    repair: bool = False,
) -> DominantGraph:
    """Load a graph previously written by :func:`save_graph`.

    Every load runs version negotiation, the SHA-256 manifest check
    (version >= 2 archives), and full structural validation; any failure
    raises :class:`~repro.errors.IndexCorruptionError` naming the damaged
    array.

    Parameters
    ----------
    path:
        The ``.npz`` file (extension optional).
    validate:
        Also run :meth:`DominantGraph.validate` after loading (asserts,
        stops at the first violation).
    verify:
        Also run the deep :func:`repro.core.verify.verify_graph` check
        and raise :class:`IndexCorruptionError` listing every issue found
        (slow on big indexes; useful when provenance is uncertain — this
        is what ``repro doctor`` uses).
    repair:
        On corruption, attempt :func:`repair_graph` instead of raising:
        rebuild from the surviving ``values`` matrix and emit a
        :class:`~repro.errors.DegradedResultWarning` describing what was
        lost.  Unrepairable archives still raise.
    """
    if not path.endswith(".npz") and not os.path.exists(path):
        path = path + ".npz"
    try:
        payload = _read_payload(path)
        version = _negotiate_version(payload, path)
        if version >= 2:
            _verify_manifest(payload, path)
        _validate_payload(payload, path)
        graph = _construct(payload, path)
    except IndexCorruptionError as exc:
        if not repair:
            raise
        graph, notes = repair_graph(path)
        warnings.warn(
            DegradedResultWarning(
                f"index {path} was corrupt ({exc.reason}); "
                f"rebuilt from surviving data: {'; '.join(notes)}"
            ),
            stacklevel=2,
        )
    if validate:
        graph.validate()
    if verify:
        from repro.core.verify import format_issues, verify_graph

        issues = verify_graph(graph)
        if issues:
            raise IndexCorruptionError(
                "deep verification failed: " + format_issues(issues),
                path=path,
            )
    return graph


# ----------------------------------------------------------------------
# Repair
# ----------------------------------------------------------------------
def _salvage(path: str) -> dict:
    """Best-effort read: every array that can still be decoded."""
    payload: dict = {}
    try:
        archive = np.load(path, allow_pickle=False)
    except Exception:  # repro: noqa[typed-errors] -- best-effort salvage of a corrupt archive must survive whatever np.load throws
        return payload
    with archive:
        for key in archive.files:
            try:
                payload[key] = archive[key]
            except Exception:  # repro: noqa[typed-errors] -- each member is decoded independently; any failure just skips that array
                continue
    return payload


def _salvaged_membership(payload: dict, n: int) -> tuple:
    """``(real_ids, converted_ids)`` when membership survived, else None.

    Membership is trusted only when *both* ``record_ids`` and
    ``pseudo_ids`` decoded and look sane — with only one of the two, a
    mark-deleted record could silently resurrect, which repair must never
    risk.
    """
    record_ids = payload.get("record_ids")
    pseudo_ids = payload.get("pseudo_ids")
    for array in (record_ids, pseudo_ids):
        if array is None or array.ndim != 1 or array.dtype.kind not in "iu":
            return None
    ids = set(record_ids.tolist())
    pseudo = set(pseudo_ids.tolist())
    if len(ids) != record_ids.shape[0] or not pseudo <= ids:
        return None
    if any(not 0 <= rid < n for rid in ids - pseudo):
        return None
    real = sorted(ids - pseudo)
    converted = sorted(rid for rid in pseudo if 0 <= rid < n)
    if not real and not converted:
        return None
    return real, converted


def repair_graph(path: str) -> tuple:
    """Rebuild a damaged index from whatever arrays survive.

    Returns ``(graph, notes)`` where ``notes`` lists what was lost in
    human-readable form.  The ``values`` matrix is the one array repair
    cannot do without; when it is damaged too, the index is unrepairable
    and :class:`~repro.errors.IndexCorruptionError` is raised.

    The rebuilt graph is a plain DG (pseudo levels are reconstructed
    structure, not data — rebuild with ``repro build`` to restore them).
    Indexed-row membership and mark-deleted records are preserved when
    ``record_ids``/``pseudo_ids`` survive; otherwise every dataset row is
    re-indexed and a note says so.
    """
    from repro.core.builder import build_dominant_graph

    payload = _salvage(path)
    values = payload.get("values")
    if (
        values is None
        or getattr(values, "ndim", 0) != 2
        or values.dtype.kind != "f"
        or values.size == 0
        or not np.all(np.isfinite(values))
    ):
        raise IndexCorruptionError(
            "values matrix did not survive; index is unrepairable",
            path=path,
            array="values",
        )
    n, dims = values.shape
    notes: list = []

    names = None
    attributes = payload.get("attribute_names")
    if (
        attributes is not None
        and attributes.ndim == 1
        and attributes.dtype.kind == "U"
        and attributes.shape[0] == dims
    ):
        names = [str(a) for a in attributes]
    else:
        notes.append("attribute names lost; defaults restored")
    dataset = Dataset(values, attribute_names=names)

    membership = _salvaged_membership(payload, n)
    if membership is None:
        real, converted = list(range(n)), []
        notes.append("indexed-row membership lost; every dataset row re-indexed")
    else:
        real, converted = membership
    graph = build_dominant_graph(dataset, record_ids=real + converted)
    for rid in converted:
        graph.convert_to_pseudo(rid)
    pseudo_ids = payload.get("pseudo_ids")
    had_synthetic_pseudo = (
        membership is not None
        and any(pid >= n for pid in pseudo_ids.tolist())
    )
    if membership is None or had_synthetic_pseudo:
        notes.append("pseudo levels dropped; rebuild the index to restore them")
    notes.append(f"re-indexed {len(real)} real records from the values matrix")
    return graph, notes
