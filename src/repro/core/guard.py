"""Guarded query execution: budgets, deadlines, graceful degradation.

A serving deployment cannot let one query monopolize the process, and it
cannot return a 500 because one engine tier has a bug.  This module wraps
query execution in both protections:

**Budgets.**  :class:`BudgetedAccessCounter` subclasses the
:class:`~repro.metrics.counters.AccessCounter` every engine already
charges its scored records to (the paper's "accessed records" metric,
Definition 3.1), and raises
:class:`~repro.errors.QueryBudgetExceeded` the moment the tally passes an
accessed-record budget or a wall-clock deadline.  Because the check rides
the existing accounting, no traversal kernel needed a hook — the budget
is enforced mid-traversal in every tier, including the batched compiled
kernel.

**Degradation.**  :func:`run_query` answers through a chain of serving
tiers, each strictly simpler (and slower) than the one before::

    compiled   CompiledAdvancedTraveler over graph.compile()
       |       (recompiled automatically when the snapshot is stale)
       v
    reference  AdvancedTraveler over the mutable DominantGraph
       |       (no snapshot, no CSR arrays — just the paper's Algorithm 2)
       v
    naive      full scan of the indexed real records
               (no graph structure consulted at all)

A tier that raises anything other than :class:`QueryBudgetExceeded` is
abandoned; a :class:`~repro.errors.DegradedResultWarning` records the
failure and the next tier answers.  Budget violations are *not* degraded
around — every lower tier does at least as much record access, so the
only honest response is the typed error.  The tier that actually produced
the answer is recorded on :attr:`repro.core.result.TopKResult.tier`.

All three tiers return identical answers by construction (the compiled
engine is bit-identical to the reference, and the naive scan is the
correctness oracle the whole test suite compares against), so degradation
trades latency, never correctness.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import replace
from typing import Sequence

from repro.core.advanced import AdvancedTraveler
from repro.core.compiled import CompiledAdvancedTraveler, CompiledDG
from repro.core.functions import ScoringFunction, WherePredicate
from repro.core.graph import DominantGraph
from repro.core.result import TopKResult
from repro.errors import (
    DeadlineExceeded,
    DegradedResultWarning,
    InvariantViolation,
    QueryBudgetExceeded,
)
from repro.metrics.counters import AccessCounter
from repro.resilience.breaker import BreakerBoard
from repro.resilience.deadline import Deadline

#: Serving tiers, fastest first; run_query walks this chain.
TIERS = ("compiled", "reference", "naive")


class BudgetedAccessCounter(AccessCounter):
    """An access counter that enforces record and wall-clock budgets.

    Engines charge every scored record here (they already must, for the
    paper's cost metric), so the budget check needs no hooks inside the
    traversal kernels: the counter raises
    :class:`~repro.errors.QueryBudgetExceeded` from within
    ``count_computed`` / ``count_computed_batch`` the moment a limit is
    passed, aborting the traversal mid-flight.

    Parameters
    ----------
    max_records:
        Maximum records the query may score (``None`` = unlimited).
    budget_ms:
        Wall-clock budget in milliseconds from ``started`` (``None`` =
        unlimited).
    started:
        ``time.monotonic()`` timestamp the budget is measured from;
        defaults to construction time.  The guard passes one start time
        to every tier so fallbacks share the original deadline.
    deadline:
        Optional end-to-end :class:`~repro.resilience.deadline.Deadline`
        enforced alongside the per-tier budgets.  This is how the
        deadline reaches *mid-traversal* in tiers with no kernel
        checkpoint of their own (reference and naive): they charge this
        counter per scored record, and the counter raises
        :class:`~repro.errors.DeadlineExceeded` the moment the request's
        time is gone.
    """

    def __init__(
        self,
        max_records: int | None = None,
        budget_ms: float | None = None,
        started: float | None = None,
        deadline: Deadline | None = None,
    ) -> None:
        super().__init__()
        self.max_records = max_records
        self.budget_ms = budget_ms
        self.started = time.monotonic() if started is None else started
        self.deadline = deadline

    def enforce(self) -> None:
        """Raise :class:`QueryBudgetExceeded` if either budget is spent.

        Called after every charge, and again by :func:`run_query` when a
        tier *completes* — a query that scores nothing (an all-pseudo
        index, an empty candidate set) never charges the counter, and
        without the completion check such a zero-access path could run
        arbitrarily past ``budget_ms`` yet return as if on time.
        """
        if self.max_records is not None and self.computed > self.max_records:
            raise QueryBudgetExceeded(
                "records", limit=self.max_records, spent=self.computed
            )
        if self.budget_ms is not None:
            elapsed_ms = 1000.0 * (time.monotonic() - self.started)
            if elapsed_ms > self.budget_ms:
                raise QueryBudgetExceeded(
                    "time", limit=self.budget_ms, spent=elapsed_ms
                )
        if self.deadline is not None:
            self.deadline.check(stage="counter")

    def count_computed(
        self, record_id: int | None = None, pseudo: bool = False
    ) -> None:
        """Charge one evaluation, then enforce the budgets."""
        super().count_computed(record_id, pseudo=pseudo)
        self.enforce()

    def count_computed_batch(
        self, record_ids: Sequence[int], pseudo: int = 0
    ) -> None:
        """Charge a batch of evaluations, then enforce the budgets."""
        super().count_computed_batch(record_ids, pseudo=pseudo)
        self.enforce()


def _run_tier(
    tier: str,
    graph: DominantGraph,
    snapshot: CompiledDG | None,
    function: ScoringFunction,
    k: int,
    where: WherePredicate | None,
    stats: AccessCounter,
    deadline: Deadline | None = None,
) -> TopKResult:
    if tier == "compiled":
        if snapshot is None or snapshot.stale:
            snapshot = graph.compile()
        return CompiledAdvancedTraveler(snapshot).top_k(
            function, k, where=where, stats=stats, deadline=deadline
        )
    if tier == "reference":
        return AdvancedTraveler(graph).top_k(function, k, where=where, stats=stats)
    if tier == "naive":
        from repro.baselines.naive import naive_top_k_subset

        return naive_top_k_subset(
            graph.dataset,
            sorted(graph.real_ids()),
            function,
            k,
            where=where,
            stats=stats,
        )
    raise ValueError(f"unknown serving tier {tier!r}")


def run_query(
    graph: DominantGraph,
    function: ScoringFunction,
    k: int,
    *,
    engine: str = "auto",
    where: WherePredicate | None = None,
    budget_ms: float | None = None,
    budget_records: int | None = None,
    fallback: bool = True,
    snapshot: CompiledDG | None = None,
    deadline: Deadline | None = None,
    breakers: BreakerBoard | None = None,
) -> TopKResult:
    """Answer a top-k query with budgets and engine degradation.

    Parameters
    ----------
    graph:
        The (possibly Extended) Dominant Graph to serve from.
    function, k, where:
        As :meth:`repro.core.advanced.AdvancedTraveler.top_k`.
    engine:
        First tier to try: ``"auto"``/``"compiled"`` start at the
        compiled kernel, ``"reference"`` at the paper's Algorithm 2,
        ``"naive"`` at the full scan.
    budget_ms:
        Wall-clock budget in milliseconds, shared across every tier the
        query touches.  Exceeding it raises
        :class:`~repro.errors.QueryBudgetExceeded`.
    budget_records:
        Accessed-record budget per tier attempt (the paper's cost metric).
    fallback:
        When ``True`` (default), an engine failure degrades to the next
        tier with a :class:`~repro.errors.DegradedResultWarning`; when
        ``False``, the first failure propagates unchanged.
    snapshot:
        Optional pre-built :class:`~repro.core.compiled.CompiledDG` for
        the compiled tier; ignored (and rebuilt) when stale.
    deadline:
        Optional end-to-end request deadline, shared across the whole
        degradation chain (unlike ``budget_ms``, which restarts per
        tier).  Checked before each tier attempt, enforced
        mid-traversal through the budgeted counter and the kernel chunk
        checkpoints, and consulted for remaining-time-aware skipping:
        when a tier fails and the breakers' smoothed latency estimate
        for the *next* tier already exceeds the time left, the guard
        raises :class:`~repro.errors.DeadlineExceeded` instead of
        starting a fallback that provably cannot finish.
    breakers:
        Optional :class:`~repro.resilience.breaker.BreakerBoard` of
        per-tier circuit breakers (keys ``"tier:<name>"``).  A tier
        whose breaker is open is skipped with a
        :class:`~repro.errors.DegradedResultWarning`; outcomes and
        latencies feed back into the board.  The last tier in the chain
        is always attempted — a breaker must never leave a query with
        no tier at all.

    Returns
    -------
    TopKResult
        With :attr:`~repro.core.result.TopKResult.tier` set to the tier
        that actually answered.

    Examples
    --------
    >>> from repro.core.dataset import Dataset
    >>> from repro.core.builder import build_dominant_graph
    >>> from repro.core.functions import LinearFunction
    >>> graph = build_dominant_graph(Dataset([[2.0, 1.0], [1.0, 2.0]]))
    >>> run_query(graph, LinearFunction([0.5, 0.5]), k=1).tier
    'compiled'
    """
    if k <= 0:
        raise ValueError("k must be positive")
    start = engine if engine != "auto" else "compiled"
    if start not in TIERS:
        raise ValueError(f"unknown engine {start!r} (choose from {TIERS})")
    chain = TIERS[TIERS.index(start):]
    if not fallback:
        chain = chain[:1]
    started = time.monotonic()

    failure: Exception | None = None
    for position, tier in enumerate(chain):
        last = position + 1 == len(chain)
        if deadline is not None:
            deadline.check(stage="guard", tier=tier)
        breaker = None if breakers is None else breakers.get(f"tier:{tier}")
        if breaker is not None and not last and not breaker.allow():
            warnings.warn(
                DegradedResultWarning(
                    f"{tier} tier skipped: its circuit breaker is "
                    f"{breaker.state}; degrading to the "
                    f"{chain[position + 1]} tier"
                ),
                stacklevel=2,
            )
            continue
        if (
            deadline is not None
            and breaker is not None
            and not last
            and (estimate := breaker.latency_ewma_ms) is not None
            and deadline.remaining_ms() < estimate
        ):
            # This tier's typical latency already exceeds the time left,
            # and every later tier is slower still: fail fast rather
            # than burn the remaining budget on a doomed attempt.
            raise DeadlineExceeded(
                deadline.total_ms,
                deadline.spent_ms(),
                stage="guard-skip",
                tier=tier,
            )
        stats = BudgetedAccessCounter(
            max_records=budget_records,
            budget_ms=budget_ms,
            started=started,
            deadline=deadline,
        )
        tier_started = time.monotonic()
        try:
            result = _run_tier(
                tier, graph, snapshot, function, k, where, stats, deadline
            )
            # Completion check: a tier that scored nothing (zero-access
            # fast path) never tripped the per-access enforcement, but
            # the wall-clock budget applies to elapsed time regardless.
            stats.enforce()
        except QueryBudgetExceeded as exc:
            # Lower tiers access at least as many records: degrading
            # around a budget would just spend more of it.  Surface the
            # typed error with the tier that tripped it.  Budget trips
            # are the caller's fault, not the tier's: no breaker charge.
            exc.tier = exc.tier or tier
            raise
        except Exception as exc:  # repro: noqa[typed-errors] -- the degradation chain exists to absorb arbitrary engine faults; anything narrower would crash on the exact bugs it guards against
            if breaker is not None:
                breaker.record_failure()
            failure = exc
            if last:
                raise
            warnings.warn(
                DegradedResultWarning(
                    f"{tier} engine failed ({type(exc).__name__}: {exc}); "
                    f"degrading to the {chain[position + 1]} tier"
                ),
                stacklevel=2,
            )
            continue
        if breaker is not None:
            breaker.record_success(
                1000.0 * (time.monotonic() - tier_started)
            )
        return replace(result, tier=tier)
    if failure is not None:
        raise failure
    raise InvariantViolation("no serving tier ran")
