"""Core contribution of the paper: the Dominant Graph index and its queries.

The subpackage layout follows the paper's structure:

- :mod:`repro.core.dataset` — the record set ``D`` (Section II, Table I).
- :mod:`repro.core.functions` — aggregate monotone query functions
  (Definition 2.1).
- :mod:`repro.core.dominance` — the dominance relation (Definition 2.2).
- :mod:`repro.core.layers` — maximal-layer decomposition (Definition 2.3).
- :mod:`repro.core.graph` — the Dominant Graph itself (Definition 2.4).
- :mod:`repro.core.builder` — offline DG construction.
- :mod:`repro.core.traveler` — Basic Traveler (Algorithm 1).
- :mod:`repro.core.cost` — the cost model (Theorems 3.1 and 3.2).
- :mod:`repro.core.pseudo` — pseudo records / Extended DG (Section IV-A).
- :mod:`repro.core.advanced` — Advanced Traveler (Algorithm 2).
- :mod:`repro.core.compiled` — compiled flat-array engine (CSR adjacency,
  heap CL, in-degree unlock, batch scoring); bit-identical to the
  reference Travelers.
- :mod:`repro.core.nway` — N-Way Traveler (Algorithm 3, Section IV-C).
- :mod:`repro.core.maintenance` — insertion/deletion (Section V).
"""

from repro.core.advanced import AdvancedTraveler
from repro.core.builder import build_dominant_graph, build_extended_graph
from repro.core.compiled import (
    CompiledAdvancedTraveler,
    CompiledBasicTraveler,
    CompiledDG,
)
from repro.core.dataset import Dataset
from repro.core.functions import (
    DecomposableFunction,
    LinearFunction,
    MinFunction,
    ProductFunction,
    ScoringFunction,
    WeightedPowerFunction,
)
from repro.core.graph import DominantGraph
from repro.core.guard import BudgetedAccessCounter, run_query
from repro.core.io import load_graph, repair_graph, save_graph
from repro.core.maintenance import (
    delete_many,
    delete_record,
    insert_many,
    insert_record,
    mark_deleted,
)
from repro.core.progressive import iter_ranked, top_k_progressive
from repro.core.nway import NWayTraveler
from repro.core.result import TopKResult
from repro.core.traveler import BasicTraveler

__all__ = [
    "AdvancedTraveler",
    "BasicTraveler",
    "BudgetedAccessCounter",
    "CompiledAdvancedTraveler",
    "CompiledBasicTraveler",
    "CompiledDG",
    "Dataset",
    "DecomposableFunction",
    "DominantGraph",
    "LinearFunction",
    "MinFunction",
    "NWayTraveler",
    "ProductFunction",
    "ScoringFunction",
    "TopKResult",
    "WeightedPowerFunction",
    "build_dominant_graph",
    "build_extended_graph",
    "delete_many",
    "delete_record",
    "insert_many",
    "insert_record",
    "iter_ranked",
    "load_graph",
    "mark_deleted",
    "repair_graph",
    "run_query",
    "save_graph",
    "top_k_progressive",
]
