"""Online DG maintenance: insertion and deletion (paper Section V).

The paper's headline claim is that DG maintenance is *local* — unlike
ONION (re-compute convex hulls) or PREFER (re-materialize views), inserting
or deleting a record only restructures the part of the graph the record
dominates — with an O(|D|^2) worst case (Algorithms 4 and 5).

Implementation note (also recorded in DESIGN.md): this module is an
optimized equivalent of the paper's Algorithms 4 and 5 — the literal
pseudocode is transcribed and vindicated in
:mod:`repro.core.paper_variants`, and both formulations are tested equal
to a from-scratch rebuild.  The local rule everything rests on is the
chain characterization of the maximal-layer decomposition::

    layer(t) = 1 + max({layer(s) : s dominates t} or {-1})      (0-based)

For insertion the affected set is ``{t : new record dominates t}``; for
deletion it is the DG descendants of the removed record (every longest
chain is a DG path, so any record whose layer can change is reachable).
Affected records are re-laid-out in ascending old-layer order — which
guarantees a record's changed dominators are finalized before the record
itself — then edges are rebuilt for every moved record.  Both operations
stay within the paper's O(|D|^2) bound and are validated in the test suite
by equivalence to a from-scratch rebuild.

Extended DGs (with pseudo levels) are maintained too, per the paper
("suitable for both DG and Extended DG"): a record arriving at the first
real layer without a pseudo parent raises the nearest bottom-level pseudo
(and its ancestor chain) to cover it, and pseudo records left childless by
deletions are garbage-collected.  The quick alternative the paper offers
for deletion — mark the record as pseudo so the Advanced Traveler skips it
— is :func:`mark_deleted`.
"""

from __future__ import annotations

import time
from typing import Iterable

import numpy as np

from repro.core.compiled import CompiledDG
from repro.core.dominance import (
    dominance_matrix,
    dominated_by,
    dominates,
    dominators_of,
)
from repro.core.graph import DominantGraph
from repro.core.overlay import DeltaOverlay
from repro.core.pseudo import count_pseudo_levels, pseudo_parent_vector
from repro.errors import InvariantViolation


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------
def _vectors_for(graph: DominantGraph, ids: np.ndarray) -> np.ndarray:
    """Value matrix aligned row-for-row with ``ids``.

    Real rows come out of one vectorized dataset gather; only the (few)
    pseudo vectors are fetched individually, so the fetch costs O(n)
    numpy work rather than O(n) Python-level calls.
    """
    values = np.empty((ids.shape[0], graph.dataset.dims), dtype=np.float64)
    pseudo = graph.pseudo_ids()
    if pseudo:
        pseudo_mask = np.isin(ids, np.asarray(pseudo, dtype=np.intp))
    else:
        pseudo_mask = np.zeros(ids.shape[0], dtype=bool)
    real_pos = np.flatnonzero(~pseudo_mask)
    if real_pos.size:
        values[real_pos] = graph.dataset.take(ids[real_pos])
    for pos in np.flatnonzero(pseudo_mask):
        values[pos] = graph.vector(int(ids[pos]))
    return values


def _indexed_snapshot(graph: DominantGraph) -> tuple:
    """Ids, layer indices, and value matrix of everything currently indexed.

    All three arrays are parallel; order is the graph's placement order.
    """
    ids, layers = graph.indexed_arrays()
    return ids, layers, _vectors_for(graph, ids)


def _layer_block(graph: DominantGraph, index: int) -> tuple:
    """Sorted id array and aligned vectors of one layer (vectorized fetch)."""
    ids = graph.layer_array(index)
    return ids, _vectors_for(graph, ids)


def _rebuild_edges(graph: DominantGraph, record_ids) -> None:
    """Recompute all edges incident to the given records.

    Assumes every record is already sitting in its final layer.  Edges are
    symmetric sets, so records moved next to each other are wired once.
    Neighbouring layer blocks are cached per layer index, since moved
    records cluster in few layers.
    """
    for rid in record_ids:
        graph.drop_edges(rid)
    blocks: dict = {}

    def block_for(index: int) -> tuple:
        if index not in blocks:
            blocks[index] = _layer_block(graph, index)
        return blocks[index]

    for rid in record_ids:
        layer = graph.layer_of(rid)
        vector = graph.vector(rid)
        if layer > 0 and graph.layer_width(layer - 1):
            above, above_block = block_for(layer - 1)
            for pos in np.flatnonzero(dominators_of(vector, above_block)):
                graph.add_edge(int(above[pos]), rid)
        if layer + 1 < graph.num_layers and graph.layer_width(layer + 1):
            below, below_block = block_for(layer + 1)
            for pos in np.flatnonzero(dominated_by(vector, below_block)):
                graph.add_edge(rid, int(below[pos]))


# ----------------------------------------------------------------------
# Pseudo-level repair (Extended DG maintenance)
# ----------------------------------------------------------------------
def _repair_pseudo_cover(graph: DominantGraph, vector: np.ndarray) -> None:
    """Make the pseudo levels strictly dominate ``vector``.

    Ensures (a) no pseudo record is dominated by ``vector`` — any such
    pseudo is raised above it — and (b) some bottom-level pseudo strictly
    dominates ``vector``, raising the nearest one when none does.  Raising
    a pseudo keeps all of its child edges valid (its vector only grows)
    but can break its own parent edges, so raised pseudos are re-covered
    upward level by level; pseudos dominated inside their own level are
    merged into their dominator, which inherits their children.  Edges
    across pseudo boundaries stay sparse (cluster-style): each record
    keeps at least one dominating pseudo parent, never necessarily all.
    """
    levels = count_pseudo_levels(graph)
    if levels == 0:
        return

    def raise_to_cover(pid: int, covered: np.ndarray) -> None:
        current = graph.vector(pid)
        if dominates(current, covered):
            return
        graph.update_pseudo_vector(
            pid, pseudo_parent_vector(np.vstack([current, covered]))
        )
        # The grown vector may have escaped some of its parents.
        for parent in list(graph.parents_of(pid)):
            if not dominates(graph.vector(parent), graph.vector(pid)):
                graph.remove_edge(parent, pid)

    # (a) No pseudo anywhere may be dominated by the incoming vector.
    for level in range(levels):
        for pid in sorted(graph.layer(level)):
            if dominators_of(graph.vector(pid), vector[None, :]).any():
                raise_to_cover(pid, vector)

    # (b) Some bottom-level pseudo must strictly dominate the vector.
    bottom = sorted(graph.layer(levels - 1))
    if not any(dominates(graph.vector(pid), vector) for pid in bottom):
        distances = [
            float(np.sum((graph.vector(pid) - vector) ** 2)) for pid in bottom
        ]
        raise_to_cover(bottom[int(np.argmin(distances))], vector)

    # Re-cover upward: every pseudo below the top level needs a dominating
    # parent one level up; raise the nearest candidate when none is left.
    for level in range(levels - 1, 0, -1):
        above = sorted(graph.layer(level - 1))
        for pid in sorted(graph.layer(level)):
            pv = graph.vector(pid)
            if any(
                dominates(graph.vector(up), pv)
                for up in graph.parents_of(pid)
            ):
                continue
            covering = [up for up in above if dominates(graph.vector(up), pv)]
            if covering:
                graph.add_edge(covering[0], pid)
                continue
            distances = [
                float(np.sum((graph.vector(up) - pv) ** 2)) for up in above
            ]
            chosen = above[int(np.argmin(distances))]
            raise_to_cover(chosen, pv)
            graph.add_edge(chosen, pid)

    # Merge away pseudos now dominated inside their own level; the
    # dominator inherits the victim's children (it dominates them too, by
    # transitivity of strict-through-weak dominance).
    for level in range(levels):
        members = sorted(graph.layer(level))
        if not members:
            continue
        vectors = np.vstack([graph.vector(pid) for pid in members])
        for i, pid in enumerate(members):
            if pid not in graph:
                continue
            others = [
                member
                for member in sorted(graph.layer(level))
                if member != pid
                and dominators_of(vectors[i], graph.vector(member)[None, :]).any()
            ]
            if not others:
                continue
            # Lowest-id dominator inherits: without the sort above the heir
            # followed Python's set order and merges differed between runs.
            heir = others[0]
            for child in list(graph.children_of(pid)):
                graph.add_edge(heir, child)
            graph.remove_record(pid)
    # No pruning here: merges keep their heir in the same level, so no
    # level empties, and callers mid-operation rely on stable indices.


def _reattach_pseudo_parent(graph: DominantGraph, record_id: int) -> None:
    """Give a first-real-layer record a dominating pseudo parent edge.

    Called after :func:`_repair_pseudo_cover` guaranteed such a pseudo
    exists; a no-op when the record already has a dominating parent.
    """
    levels = count_pseudo_levels(graph)
    if levels == 0 or graph.layer_of(record_id) != levels:
        return
    vector = graph.vector(record_id)
    if any(
        dominates(graph.vector(p), vector) for p in graph.parents_of(record_id)
    ):
        return
    for pid in sorted(graph.layer(levels - 1)):
        if dominates(graph.vector(pid), vector):
            graph.add_edge(pid, record_id)
            return
    raise InvariantViolation(
        "pseudo cover repair did not produce a dominating parent — "
        "Extended DG invariant broken"
    )


def _collect_childless_pseudo(graph: DominantGraph) -> list:
    """Pseudo records with no children (useless parents, GC candidates).

    Sweeps only the pseudo ids — a handful per graph — instead of every
    indexed record, so deletion GC stays O(pseudo) per pass.
    """
    return [
        rid for rid in graph.pseudo_ids() if not graph.children_of(rid)
    ]


# ----------------------------------------------------------------------
# Insertion (paper Algorithm 4, corrected layer rule)
# ----------------------------------------------------------------------
def insert_record(graph: DominantGraph, record_id: int) -> int:
    """Index dataset row ``record_id`` into the DG; return its layer.

    The row must already exist in ``graph.dataset`` (build the graph over a
    subset of rows, then insert the rest — which is how the paper's
    maintenance experiment feeds 1K fresh records one at a time).

    Complexity: O(|D| * |affected|) dominance work plus edge rebuilding for
    moved records — within the paper's O(|D|^2) worst case.
    """
    if record_id in graph:
        raise ValueError(f"record {record_id} is already indexed")
    if not 0 <= record_id < len(graph.dataset):
        raise IndexError(f"record {record_id} is not a dataset row")
    vector = graph.dataset.vector(record_id)

    _repair_pseudo_cover(graph, vector)
    pseudo_levels = count_pseudo_levels(graph)

    id_array, layer_array, vectors = _indexed_snapshot(graph)

    if id_array.size:
        dominator_mask = dominators_of(vector, vectors)
    else:
        dominator_mask = np.zeros(0, dtype=bool)
    if dominator_mask.any():
        target = int(layer_array[dominator_mask].max()) + 1
    else:
        target = 0
    target = max(target, pseudo_levels)

    # Affected set: everything the new record dominates can gain a longer
    # chain (by at most one hop through the new record).
    if id_array.size:
        affected_mask = dominated_by(vector, vectors)
    else:
        affected_mask = np.zeros(0, dtype=bool)
    affected_ids = id_array[affected_mask]
    affected_layers = layer_array[affected_mask]
    affected_vectors = vectors[affected_mask]
    graph.place_record(record_id, target)

    new_layer = {record_id: target}
    moved = [record_id]
    # Insertion shifts any layer by at most one: every dominator of the
    # new record also dominates whatever the new record dominates, so an
    # affected record's old layer is already >= target, and it moves down
    # exactly one layer iff a *mover into its own layer* dominates it —
    # the new record itself, or a cascade of previously bumped records.
    # Processing old layers upward from `target` therefore needs one
    # movers-vs-residents dominance matrix per layer, nothing per record.
    movers_into: dict = {target: [vector]}
    for layer in np.unique(affected_layers):
        layer = int(layer)
        arrivals = movers_into.get(layer)
        if not arrivals:
            continue
        arrival_block = np.vstack(arrivals)
        sel = affected_layers == layer
        residents = affected_ids[sel]
        block = affected_vectors[sel]
        bumped = dominance_matrix(arrival_block, block).any(axis=0)
        for row in np.flatnonzero(bumped):
            t = int(residents[row])
            new_layer[t] = layer + 1
            moved.append(t)
            movers_into.setdefault(layer + 1, []).append(block[row])

    for t in moved:
        if t != record_id and graph.layer_of(t) != new_layer[t]:
            graph.move_record(t, new_layer[t])
    _rebuild_edges(graph, moved)
    graph.prune_empty_layers()
    return graph.layer_of(record_id)


# ----------------------------------------------------------------------
# Deletion (paper Algorithm 5, corrected layer rule)
# ----------------------------------------------------------------------
def delete_record(graph: DominantGraph, record_id: int) -> None:
    """Remove a record from the index, promoting descendants as needed.

    Implements the "chain reaction" of Algorithm 5: descendants whose
    longest dominating chain ran through the deleted record rise by one
    layer, recursively.  Descendants are exactly the records that can move
    (every longest chain is a DG path), and each one's new layer is
    recomputed from its true dominator set, so the result matches a full
    rebuild.
    """
    if record_id not in graph:
        raise KeyError(f"record {record_id} is not indexed")

    # DG descendants, the affected superset (BFS over child edges).
    descendants: list = []
    seen = {record_id}
    frontier = list(graph.children_of(record_id))
    while frontier:
        nxt: list = []
        for rid in frontier:
            if rid in seen:
                continue
            seen.add(rid)
            descendants.append(rid)
            nxt.extend(graph.children_of(rid))
        frontier = nxt

    graph.remove_record(record_id)
    pseudo_levels = count_pseudo_levels(graph)

    # Deleting one record shortens any dominance chain by at most one, so
    # every layer shifts by at most one.  A descendant t at old layer X
    # moves up exactly when no dominator remains at layer X-1 — and the
    # layer-(X-1) dominators are precisely t's DG parents, so the paper's
    # Algorithm 5 cascade ("if C_i has no other parent in the nth layer,
    # promote it") is exact here: t promotes iff all of its parents are
    # the deleted record or records promoted by this cascade.
    descendants.sort(key=graph.layer_of)
    gone_or_promoted = {record_id}
    new_layer: dict = {}
    moved: list = []
    needs_cover: list = []
    for t in descendants:
        if any(p not in gone_or_promoted for p in graph.parents_of(t)):
            continue
        layer = graph.layer_of(t) - 1
        if not graph.is_pseudo(t) and layer < pseudo_levels:
            # Would rise past the first real layer: stays, but its pseudo
            # parents are gone, so the cover must be repaired.
            needs_cover.append(t)
            continue
        new_layer[t] = layer
        moved.append(t)
        gone_or_promoted.add(t)

    for t in needs_cover:
        _repair_pseudo_cover(graph, graph.vector(t))
    for t in moved:
        graph.move_record(t, new_layer[t])
    _rebuild_edges(graph, moved)
    for t in needs_cover:
        _reattach_pseudo_parent(graph, t)

    # Garbage-collect pseudo parents left childless, cascading upward.
    while True:
        childless = _collect_childless_pseudo(graph)
        if not childless:
            break
        for pid in childless:
            graph.remove_record(pid)
    graph.prune_empty_layers()


def validate_insert_batch(
    graph: DominantGraph, record_ids: Iterable[int]
) -> list[int]:
    """Normalize and fully validate an insertion batch *before* mutation.

    Returns the ids as ``int``\\ s.  Raises ``ValueError`` on a duplicate
    or already-indexed id and ``IndexError`` on an id outside the
    dataset's rows — always before the graph is touched, so a rejected
    batch leaves the index exactly as it was.
    """
    record_ids = [int(r) for r in record_ids]
    seen: set = set()
    for rid in record_ids:
        if rid in seen:
            raise ValueError(f"record {rid} appears twice in the batch")
        seen.add(rid)
        if rid in graph:
            raise ValueError(f"record {rid} is already indexed")
        if not 0 <= rid < len(graph.dataset):
            raise IndexError(f"record {rid} is not a dataset row")
    return record_ids


def validate_delete_batch(
    graph: DominantGraph, record_ids: Iterable[int]
) -> list[int]:
    """Normalize and fully validate a deletion batch *before* mutation.

    Returns the ids as ``int``\\ s.  Raises ``ValueError`` on a duplicate
    and ``KeyError`` on an id that is not indexed — always before the
    graph is touched, so a rejected batch leaves the index exactly as it
    was.
    """
    record_ids = [int(r) for r in record_ids]
    seen: set = set()
    for rid in record_ids:
        if rid in seen:
            raise ValueError(f"record {rid} appears twice in the batch")
        seen.add(rid)
        if rid not in graph:
            raise KeyError(f"record {rid} is not indexed")
    return record_ids


def insert_many(graph: DominantGraph, record_ids: Iterable[int]) -> list[int]:
    """Index a batch of dataset rows; returns each record's layer.

    The paper notes that batched maintenance is what its rivals *require*
    (ONION/AppRI rebuild; "it is advisable to perform index maintenance in
    batches" for AppRI); DG does not need batching for correctness, so
    this is a loop over :func:`insert_record`.  When a batch approaches
    the index size, a from-scratch
    :func:`~repro.core.builder.build_dominant_graph` over the union is the
    faster choice — that trade-off belongs to the caller, who knows both
    sizes.

    The batch is **all-or-nothing with respect to validation**: every id
    is checked up front (duplicates within the batch, already-indexed
    ids, out-of-range rows) via :func:`validate_insert_batch`, and any
    invalid id raises *before the graph is mutated at all*.  Callers —
    the WAL-backed :class:`~repro.serve.index.ServingIndex` in
    particular — rely on this to log a batch as one atomic record: a
    rejected batch leaves nothing to undo.
    """
    record_ids = validate_insert_batch(graph, record_ids)
    layers = []
    for rid in record_ids:
        layers.append(insert_record(graph, rid))
    return layers


def delete_many(graph: DominantGraph, record_ids: Iterable[int]) -> None:
    """Remove a batch of records (loop over :func:`delete_record`).

    All-or-nothing with respect to validation, exactly like
    :func:`insert_many`: duplicates and unindexed ids raise (via
    :func:`validate_delete_batch`) before any record is removed, so a
    rejected batch is a no-op.
    """
    record_ids = validate_delete_batch(graph, record_ids)
    for rid in record_ids:
        delete_record(graph, rid)


def mark_deleted(graph: DominantGraph, record_id: int) -> None:
    """The paper's cheap deletion: mark the record as pseudo (Section V-B).

    The graph keeps its structure; the Advanced Traveler traverses the
    record but no longer reports it.  Use :func:`delete_record` when the
    physical structure should shrink (the paper suggests rebuilding or
    properly deleting in batches).
    """
    if record_id not in graph:
        raise KeyError(f"record {record_id} is not indexed")
    graph.convert_to_pseudo(record_id)


# ----------------------------------------------------------------------
# Delta application: the mutable side of the base+delta overlay
# ----------------------------------------------------------------------
class OverlayBuilder:
    """Accumulates changes since a compiled base into overlay form.

    The maintenance functions above mutate the live
    :class:`DominantGraph`; this builder records the *visible effect* of
    each mutation relative to a frozen
    :class:`~repro.core.compiled.CompiledDG` base, so the serving layer
    can publish an O(changes) :class:`~repro.core.overlay.DeltaOverlay`
    instead of recompiling.  One builder lives per base generation; a
    compaction constructs a fresh one against the new base.

    Visibility rules (what makes ``base+overlay`` ≡ recompile):

    - ``insert``: the record joins the delta with its exact float64
      vector.  If the base also holds a (previously deleted) row for the
      id, that row is masked — the delta entry supersedes it.
    - ``delete`` / ``mark_deleted``: a delta record is simply dropped
      (it was never in the base); a base record's dense row joins the
      deletion set.  Both operations have the same *answer* effect — a
      marked-pseudo record is scanned but never reported, and a masked
      base row is likewise scanned (it still bounds retirement) but
      never reported.

    The builder itself is writer-private and mutable; only
    :meth:`freeze` output escapes to readers, and that output is frozen.
    """

    def __init__(self, base: CompiledDG) -> None:
        pseudo = base.pseudo_mask
        self._base_rows: "dict[int, int]" = {
            int(rid): dense
            for dense, rid in enumerate(base.record_ids.tolist())
            if not pseudo[dense]
        }
        self._dims = int(base.values.shape[1])
        self._delta: "dict[int, np.ndarray]" = {}
        self._deleted: "set[int]" = set()
        self._first_change: float | None = None

    def _touch(self) -> None:
        if self._first_change is None:
            self._first_change = time.monotonic()

    @property
    def size(self) -> int:
        """Overlay weight if frozen now — what publish caps compare."""
        return len(self._delta) + len(self._deleted)

    @property
    def age(self) -> float:
        """Seconds since the oldest unfolded change (0.0 when empty)."""
        if self._first_change is None:
            return 0.0
        return time.monotonic() - self._first_change

    def insert(self, record_id: int, vector: np.ndarray) -> None:
        """Record an insert applied to the graph."""
        self._touch()
        self._delta[record_id] = np.array(
            vector, dtype=np.float64, copy=True
        )
        row = self._base_rows.get(record_id)
        if row is not None:
            self._deleted.add(row)

    def delete(self, record_id: int) -> None:
        """Record a delete (or mark-deleted) applied to the graph."""
        self._touch()
        if record_id in self._delta:
            del self._delta[record_id]
            return
        row = self._base_rows.get(record_id)
        if row is None:
            raise KeyError(
                f"record {record_id} is neither in the overlay nor a "
                "real record of the base snapshot"
            )
        self._deleted.add(row)

    def mark_deleted(self, record_id: int) -> None:
        """Same visible effect as :meth:`delete` (see class docstring)."""
        self.delete(record_id)

    def freeze(self) -> "DeltaOverlay | None":
        """An immutable overlay of the changes so far (``None`` if none).

        Builds fresh arrays every call — published overlays are never
        shared with the builder's mutable state, so later mutations
        cannot leak into a snapshot readers already pinned.
        """
        if not self._delta and not self._deleted:
            return None
        ids = sorted(self._delta)
        if ids:
            delta_values = np.stack([self._delta[rid] for rid in ids])
        else:
            delta_values = np.empty((0, self._dims), dtype=np.float64)
        return DeltaOverlay(
            delta_ids=np.asarray(ids, dtype=np.int64),
            delta_values=delta_values,
            deleted_rows=np.asarray(sorted(self._deleted), dtype=np.int64),
            created_at=(
                0.0 if self._first_change is None else self._first_change
            ),
        )
