"""Online DG maintenance: insertion and deletion (paper Section V).

The paper's headline claim is that DG maintenance is *local* — unlike
ONION (re-compute convex hulls) or PREFER (re-materialize views), inserting
or deleting a record only restructures the part of the graph the record
dominates — with an O(|D|^2) worst case (Algorithms 4 and 5).

Implementation note (also recorded in DESIGN.md): this module is an
optimized equivalent of the paper's Algorithms 4 and 5 — the literal
pseudocode is transcribed and vindicated in
:mod:`repro.core.paper_variants`, and both formulations are tested equal
to a from-scratch rebuild.  The local rule everything rests on is the
chain characterization of the maximal-layer decomposition::

    layer(t) = 1 + max({layer(s) : s dominates t} or {-1})      (0-based)

For insertion the affected set is ``{t : new record dominates t}``; for
deletion it is the DG descendants of the removed record (every longest
chain is a DG path, so any record whose layer can change is reachable).
Affected records are re-laid-out in ascending old-layer order — which
guarantees a record's changed dominators are finalized before the record
itself — then edges are rebuilt for every moved record.  Both operations
stay within the paper's O(|D|^2) bound and are validated in the test suite
by equivalence to a from-scratch rebuild.

Extended DGs (with pseudo levels) are maintained too, per the paper
("suitable for both DG and Extended DG"): a record arriving at the first
real layer without a pseudo parent raises the nearest bottom-level pseudo
(and its ancestor chain) to cover it, and pseudo records left childless by
deletions are garbage-collected.  The quick alternative the paper offers
for deletion — mark the record as pseudo so the Advanced Traveler skips it
— is :func:`mark_deleted`.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.core.dominance import dominated_by, dominates, dominators_of
from repro.core.graph import DominantGraph
from repro.core.pseudo import count_pseudo_levels, pseudo_parent_vector
from repro.errors import InvariantViolation


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------
def _indexed_snapshot(graph: DominantGraph) -> tuple:
    """Ids and value matrix of everything currently indexed.

    Real records are gathered in one vectorized dataset lookup; only the
    (few) pseudo vectors are fetched individually.
    """
    ids = list(graph.iter_records())
    if not ids:
        return ids, np.empty((0, graph.dataset.dims), dtype=np.float64)
    real = [rid for rid in ids if not graph.is_pseudo(rid)]
    pseudo = [rid for rid in ids if graph.is_pseudo(rid)]
    parts = []
    if real:
        parts.append(graph.dataset.take(real))
    if pseudo:
        parts.append(np.vstack([graph.vector(rid) for rid in pseudo]))
    return real + pseudo, np.vstack(parts)


def _layer_block(graph: DominantGraph, index: int) -> tuple:
    """Sorted ids and stacked vectors of one layer (vectorized fetch)."""
    ids = sorted(graph.layer(index))
    real = [rid for rid in ids if not graph.is_pseudo(rid)]
    pseudo = [rid for rid in ids if graph.is_pseudo(rid)]
    parts = []
    if real:
        parts.append(graph.dataset.take(real))
    if pseudo:
        parts.append(np.vstack([graph.vector(rid) for rid in pseudo]))
    return real + pseudo, np.vstack(parts)


def _rebuild_edges(graph: DominantGraph, record_ids) -> None:
    """Recompute all edges incident to the given records.

    Assumes every record is already sitting in its final layer.  Edges are
    symmetric sets, so records moved next to each other are wired once.
    Neighbouring layer blocks are cached per layer index, since moved
    records cluster in few layers.
    """
    for rid in record_ids:
        graph.drop_edges(rid)
    blocks: dict = {}

    def block_for(index: int) -> tuple:
        if index not in blocks:
            blocks[index] = _layer_block(graph, index)
        return blocks[index]

    for rid in record_ids:
        layer = graph.layer_of(rid)
        vector = graph.vector(rid)
        if layer > 0 and graph.layer(layer - 1):
            above, above_block = block_for(layer - 1)
            for pos in np.flatnonzero(dominators_of(vector, above_block)):
                graph.add_edge(above[pos], rid)
        if layer + 1 < graph.num_layers and graph.layer(layer + 1):
            below, below_block = block_for(layer + 1)
            for pos in np.flatnonzero(dominated_by(vector, below_block)):
                graph.add_edge(rid, below[pos])


# ----------------------------------------------------------------------
# Pseudo-level repair (Extended DG maintenance)
# ----------------------------------------------------------------------
def _repair_pseudo_cover(graph: DominantGraph, vector: np.ndarray) -> None:
    """Make the pseudo levels strictly dominate ``vector``.

    Ensures (a) no pseudo record is dominated by ``vector`` — any such
    pseudo is raised above it — and (b) some bottom-level pseudo strictly
    dominates ``vector``, raising the nearest one when none does.  Raising
    a pseudo keeps all of its child edges valid (its vector only grows)
    but can break its own parent edges, so raised pseudos are re-covered
    upward level by level; pseudos dominated inside their own level are
    merged into their dominator, which inherits their children.  Edges
    across pseudo boundaries stay sparse (cluster-style): each record
    keeps at least one dominating pseudo parent, never necessarily all.
    """
    levels = count_pseudo_levels(graph)
    if levels == 0:
        return

    def raise_to_cover(pid: int, covered: np.ndarray) -> None:
        current = graph.vector(pid)
        if dominates(current, covered):
            return
        graph.update_pseudo_vector(
            pid, pseudo_parent_vector(np.vstack([current, covered]))
        )
        # The grown vector may have escaped some of its parents.
        for parent in list(graph.parents_of(pid)):
            if not dominates(graph.vector(parent), graph.vector(pid)):
                graph.remove_edge(parent, pid)

    # (a) No pseudo anywhere may be dominated by the incoming vector.
    for level in range(levels):
        for pid in sorted(graph.layer(level)):
            if dominators_of(graph.vector(pid), vector[None, :]).any():
                raise_to_cover(pid, vector)

    # (b) Some bottom-level pseudo must strictly dominate the vector.
    bottom = sorted(graph.layer(levels - 1))
    if not any(dominates(graph.vector(pid), vector) for pid in bottom):
        distances = [
            float(np.sum((graph.vector(pid) - vector) ** 2)) for pid in bottom
        ]
        raise_to_cover(bottom[int(np.argmin(distances))], vector)

    # Re-cover upward: every pseudo below the top level needs a dominating
    # parent one level up; raise the nearest candidate when none is left.
    for level in range(levels - 1, 0, -1):
        above = sorted(graph.layer(level - 1))
        for pid in sorted(graph.layer(level)):
            pv = graph.vector(pid)
            if any(
                dominates(graph.vector(up), pv)
                for up in graph.parents_of(pid)
            ):
                continue
            covering = [up for up in above if dominates(graph.vector(up), pv)]
            if covering:
                graph.add_edge(covering[0], pid)
                continue
            distances = [
                float(np.sum((graph.vector(up) - pv) ** 2)) for up in above
            ]
            chosen = above[int(np.argmin(distances))]
            raise_to_cover(chosen, pv)
            graph.add_edge(chosen, pid)

    # Merge away pseudos now dominated inside their own level; the
    # dominator inherits the victim's children (it dominates them too, by
    # transitivity of strict-through-weak dominance).
    for level in range(levels):
        members = sorted(graph.layer(level))
        if not members:
            continue
        vectors = np.vstack([graph.vector(pid) for pid in members])
        for i, pid in enumerate(members):
            if pid not in graph:
                continue
            others = [
                member
                for member in sorted(graph.layer(level))
                if member != pid
                and dominators_of(vectors[i], graph.vector(member)[None, :]).any()
            ]
            if not others:
                continue
            # Lowest-id dominator inherits: without the sort above the heir
            # followed Python's set order and merges differed between runs.
            heir = others[0]
            for child in list(graph.children_of(pid)):
                graph.add_edge(heir, child)
            graph.remove_record(pid)
    # No pruning here: merges keep their heir in the same level, so no
    # level empties, and callers mid-operation rely on stable indices.


def _reattach_pseudo_parent(graph: DominantGraph, record_id: int) -> None:
    """Give a first-real-layer record a dominating pseudo parent edge.

    Called after :func:`_repair_pseudo_cover` guaranteed such a pseudo
    exists; a no-op when the record already has a dominating parent.
    """
    levels = count_pseudo_levels(graph)
    if levels == 0 or graph.layer_of(record_id) != levels:
        return
    vector = graph.vector(record_id)
    if any(
        dominates(graph.vector(p), vector) for p in graph.parents_of(record_id)
    ):
        return
    for pid in sorted(graph.layer(levels - 1)):
        if dominates(graph.vector(pid), vector):
            graph.add_edge(pid, record_id)
            return
    raise InvariantViolation(
        "pseudo cover repair did not produce a dominating parent — "
        "Extended DG invariant broken"
    )


def _collect_childless_pseudo(graph: DominantGraph) -> list:
    """Pseudo records with no children (useless parents, GC candidates)."""
    return [
        rid
        for rid in graph.iter_records()
        if graph.is_pseudo(rid) and not graph.children_of(rid)
    ]


# ----------------------------------------------------------------------
# Insertion (paper Algorithm 4, corrected layer rule)
# ----------------------------------------------------------------------
def insert_record(graph: DominantGraph, record_id: int) -> int:
    """Index dataset row ``record_id`` into the DG; return its layer.

    The row must already exist in ``graph.dataset`` (build the graph over a
    subset of rows, then insert the rest — which is how the paper's
    maintenance experiment feeds 1K fresh records one at a time).

    Complexity: O(|D| * |affected|) dominance work plus edge rebuilding for
    moved records — within the paper's O(|D|^2) worst case.
    """
    if record_id in graph:
        raise ValueError(f"record {record_id} is already indexed")
    if not 0 <= record_id < len(graph.dataset):
        raise IndexError(f"record {record_id} is not a dataset row")
    vector = graph.dataset.vector(record_id)

    _repair_pseudo_cover(graph, vector)
    pseudo_levels = count_pseudo_levels(graph)

    ids, vectors = _indexed_snapshot(graph)
    id_array = np.asarray(ids, dtype=np.intp)
    layer_array = np.fromiter(
        (graph.layer_of(rid) for rid in ids), dtype=np.intp, count=len(ids)
    )

    if ids:
        dominator_mask = dominators_of(vector, vectors)
    else:
        dominator_mask = np.zeros(0, dtype=bool)
    if dominator_mask.any():
        target = int(layer_array[dominator_mask].max()) + 1
    else:
        target = 0
    target = max(target, pseudo_levels)

    # Affected set: everything the new record dominates can gain a longer
    # chain (by at most one hop through the new record).
    if ids:
        affected_mask = dominated_by(vector, vectors)
        affected = [int(s) for s in id_array[affected_mask]]
    else:
        affected = []
    graph.place_record(record_id, target)

    new_layer = {record_id: target}
    moved = [record_id]
    # Insertion shifts any layer by at most one: every dominator of the
    # new record also dominates whatever the new record dominates, so an
    # affected record's old layer is already >= target, and it moves down
    # exactly one layer iff a *mover into its own layer* dominates it —
    # the new record itself, or a cascade of previously bumped records.
    # Processing old layers upward from `target` therefore needs dominance
    # checks only against the (small) per-layer mover sets.
    by_layer: dict = {}
    for t in affected:
        by_layer.setdefault(graph.layer_of(t), []).append(t)
    movers_into: dict = {target: [vector]}
    for layer in sorted(by_layer):
        arrivals = movers_into.get(layer)
        if not arrivals:
            continue
        arrival_block = np.vstack(arrivals)
        residents = by_layer[layer]
        block = graph.dataset.take(residents)
        for row, t in enumerate(residents):
            if dominators_of(block[row], arrival_block).any():
                new_layer[t] = layer + 1
                moved.append(t)
                movers_into.setdefault(layer + 1, []).append(block[row])

    for t in moved:
        if t != record_id and graph.layer_of(t) != new_layer[t]:
            graph.move_record(t, new_layer[t])
    _rebuild_edges(graph, moved)
    graph.prune_empty_layers()
    return graph.layer_of(record_id)


# ----------------------------------------------------------------------
# Deletion (paper Algorithm 5, corrected layer rule)
# ----------------------------------------------------------------------
def delete_record(graph: DominantGraph, record_id: int) -> None:
    """Remove a record from the index, promoting descendants as needed.

    Implements the "chain reaction" of Algorithm 5: descendants whose
    longest dominating chain ran through the deleted record rise by one
    layer, recursively.  Descendants are exactly the records that can move
    (every longest chain is a DG path), and each one's new layer is
    recomputed from its true dominator set, so the result matches a full
    rebuild.
    """
    if record_id not in graph:
        raise KeyError(f"record {record_id} is not indexed")

    # DG descendants, the affected superset (BFS over child edges).
    descendants: list = []
    seen = {record_id}
    frontier = list(graph.children_of(record_id))
    while frontier:
        nxt: list = []
        for rid in frontier:
            if rid in seen:
                continue
            seen.add(rid)
            descendants.append(rid)
            nxt.extend(graph.children_of(rid))
        frontier = nxt

    graph.remove_record(record_id)
    pseudo_levels = count_pseudo_levels(graph)

    # Deleting one record shortens any dominance chain by at most one, so
    # every layer shifts by at most one.  A descendant t at old layer X
    # moves up exactly when no dominator remains at layer X-1 — and the
    # layer-(X-1) dominators are precisely t's DG parents, so the paper's
    # Algorithm 5 cascade ("if C_i has no other parent in the nth layer,
    # promote it") is exact here: t promotes iff all of its parents are
    # the deleted record or records promoted by this cascade.
    descendants.sort(key=graph.layer_of)
    gone_or_promoted = {record_id}
    new_layer: dict = {}
    moved: list = []
    needs_cover: list = []
    for t in descendants:
        if any(p not in gone_or_promoted for p in graph.parents_of(t)):
            continue
        layer = graph.layer_of(t) - 1
        if not graph.is_pseudo(t) and layer < pseudo_levels:
            # Would rise past the first real layer: stays, but its pseudo
            # parents are gone, so the cover must be repaired.
            needs_cover.append(t)
            continue
        new_layer[t] = layer
        moved.append(t)
        gone_or_promoted.add(t)

    for t in needs_cover:
        _repair_pseudo_cover(graph, graph.vector(t))
    for t in moved:
        graph.move_record(t, new_layer[t])
    _rebuild_edges(graph, moved)
    for t in needs_cover:
        _reattach_pseudo_parent(graph, t)

    # Garbage-collect pseudo parents left childless, cascading upward.
    while True:
        childless = _collect_childless_pseudo(graph)
        if not childless:
            break
        for pid in childless:
            graph.remove_record(pid)
    graph.prune_empty_layers()


def validate_insert_batch(
    graph: DominantGraph, record_ids: Iterable[int]
) -> list[int]:
    """Normalize and fully validate an insertion batch *before* mutation.

    Returns the ids as ``int``\\ s.  Raises ``ValueError`` on a duplicate
    or already-indexed id and ``IndexError`` on an id outside the
    dataset's rows — always before the graph is touched, so a rejected
    batch leaves the index exactly as it was.
    """
    record_ids = [int(r) for r in record_ids]
    seen: set = set()
    for rid in record_ids:
        if rid in seen:
            raise ValueError(f"record {rid} appears twice in the batch")
        seen.add(rid)
        if rid in graph:
            raise ValueError(f"record {rid} is already indexed")
        if not 0 <= rid < len(graph.dataset):
            raise IndexError(f"record {rid} is not a dataset row")
    return record_ids


def validate_delete_batch(
    graph: DominantGraph, record_ids: Iterable[int]
) -> list[int]:
    """Normalize and fully validate a deletion batch *before* mutation.

    Returns the ids as ``int``\\ s.  Raises ``ValueError`` on a duplicate
    and ``KeyError`` on an id that is not indexed — always before the
    graph is touched, so a rejected batch leaves the index exactly as it
    was.
    """
    record_ids = [int(r) for r in record_ids]
    seen: set = set()
    for rid in record_ids:
        if rid in seen:
            raise ValueError(f"record {rid} appears twice in the batch")
        seen.add(rid)
        if rid not in graph:
            raise KeyError(f"record {rid} is not indexed")
    return record_ids


def insert_many(graph: DominantGraph, record_ids: Iterable[int]) -> list[int]:
    """Index a batch of dataset rows; returns each record's layer.

    The paper notes that batched maintenance is what its rivals *require*
    (ONION/AppRI rebuild; "it is advisable to perform index maintenance in
    batches" for AppRI); DG does not need batching for correctness, so
    this is a loop over :func:`insert_record`.  When a batch approaches
    the index size, a from-scratch
    :func:`~repro.core.builder.build_dominant_graph` over the union is the
    faster choice — that trade-off belongs to the caller, who knows both
    sizes.

    The batch is **all-or-nothing with respect to validation**: every id
    is checked up front (duplicates within the batch, already-indexed
    ids, out-of-range rows) via :func:`validate_insert_batch`, and any
    invalid id raises *before the graph is mutated at all*.  Callers —
    the WAL-backed :class:`~repro.serve.index.ServingIndex` in
    particular — rely on this to log a batch as one atomic record: a
    rejected batch leaves nothing to undo.
    """
    record_ids = validate_insert_batch(graph, record_ids)
    layers = []
    for rid in record_ids:
        layers.append(insert_record(graph, rid))
    return layers


def delete_many(graph: DominantGraph, record_ids: Iterable[int]) -> None:
    """Remove a batch of records (loop over :func:`delete_record`).

    All-or-nothing with respect to validation, exactly like
    :func:`insert_many`: duplicates and unindexed ids raise (via
    :func:`validate_delete_batch`) before any record is removed, so a
    rejected batch is a no-op.
    """
    record_ids = validate_delete_batch(graph, record_ids)
    for rid in record_ids:
        delete_record(graph, rid)


def mark_deleted(graph: DominantGraph, record_id: int) -> None:
    """The paper's cheap deletion: mark the record as pseudo (Section V-B).

    The graph keeps its structure; the Advanced Traveler traverses the
    record but no longer reports it.  Use :func:`delete_record` when the
    physical structure should shrink (the paper suggests rebuilding or
    properly deleting in batches).
    """
    if record_id not in graph:
        raise KeyError(f"record {record_id} is not indexed")
    graph.convert_to_pseudo(record_id)
