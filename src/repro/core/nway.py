"""N-Way Traveler: top-k in high dimension (paper Algorithm 3, §IV-C).

High-dimensional data has little dominance, so a single DG degenerates
toward one huge layer.  The N-Way Traveler splits the ``m`` dimensions into
``n`` disjoint sets, builds one DG per set, and — exactly as the paper says
— "combines TA algorithm and Basic Travel algorithm": each DG is traversed
as a ranked stream ordered by its sub-function ``f_i``, while a TA-style
threshold ``β = G(f_1(head_1), ..., f_n(head_n))`` upper-bounds the score
of every record not yet seen.  The scan stops when the current k-th best
score ``δ`` reaches ``β``.

Why β is a valid bound: inside one DG, the head of the candidate list
``CL_i`` upper-bounds ``f_i`` of every record not yet popped (the Basic
Traveler's best-first invariant), and ``G`` is monotone, so any record
absent from the global candidate list scores at most ``β``.
"""

from __future__ import annotations

import bisect
import heapq
from typing import Sequence

from repro.core.builder import build_dominant_graph, build_extended_graph
from repro.core.dataset import Dataset
from repro.core.functions import DecomposableFunction, LinearFunction, ScoringFunction
from repro.core.graph import DominantGraph
from repro.core.layers import SkylineFunction
from repro.core.result import TopKResult
from repro.metrics.counters import AccessCounter


class _RankedStream:
    """Lazy Basic-Traveler traversal of one DG, ordered by a sub-function.

    Unlike Algorithm 1 there is no candidate-list truncation — the N-Way
    driver does not know in advance how deep each stream must go — and
    pseudo records are traversed but never emitted (their sub-scores still
    upper-bound their subtrees, so the head remains a valid β component).
    """

    def __init__(
        self,
        graph: DominantGraph,
        sub_function: ScoringFunction,
        stats: AccessCounter,
    ) -> None:
        self._graph = graph
        self._function = sub_function
        self._stats = stats
        self._heap: list[tuple[float, int]] = []  # (-sub_score, record_id)
        self._computed: set[int] = set()
        self._popped: set[int] = set()
        for rid in sorted(graph.layer(0)):
            self._push(rid)

    def _push(self, rid: int) -> None:
        score = self._function(self._graph.vector(rid))
        self._stats.count_examined()
        self._computed.add(rid)
        heapq.heappush(self._heap, (-score, rid))

    def head_score(self) -> float | None:
        """Sub-score of the best unpopped record; None when exhausted."""
        if not self._heap:
            return None
        return -self._heap[0][0]

    def advance(self) -> int | None:
        """Pop the head into RS_i, unlock its children; return its id."""
        if not self._heap:
            return None
        _, rid = heapq.heappop(self._heap)
        self._popped.add(rid)
        for child in sorted(self._graph.children_of(rid)):
            if child in self._computed:
                continue
            if any(p not in self._popped for p in self._graph.parents_of(child)):
                continue
            self._push(child)
        return rid


class NWayTraveler:
    """Algorithm 3: parallel traversal of one DG per dimension set.

    Parameters
    ----------
    dataset:
        The record set.
    dimension_sets:
        Disjoint dimension index sets; one DG is built per set over the
        projected data.  ``NWayTraveler.even_split`` builds the paper's
        "divide m dimensions into n sets" layout.
    extended:
        Build Extended DGs (with pseudo levels) per dimension set; on the
        high-dimensional data this algorithm targets, projected first
        layers are typically large, so this defaults to True.
    skyline, theta, seed:
        Passed through to the per-set graph builders.

    Examples
    --------
    >>> import numpy as np
    >>> rng = np.random.default_rng(0)
    >>> ds = Dataset(rng.uniform(size=(50, 4)))
    >>> nway = NWayTraveler(ds, NWayTraveler.even_split(4, 2))
    >>> result = nway.top_k(LinearFunction([0.25] * 4), k=3)
    >>> len(result)
    3
    """

    name = "nway-traveler"

    def __init__(
        self,
        dataset: Dataset,
        dimension_sets: Sequence[Sequence[int]],
        extended: bool = True,
        skyline: SkylineFunction | None = None,
        theta: int | None = None,
        seed: int = 0,
    ) -> None:
        if not dimension_sets:
            raise ValueError("need at least one dimension set")
        self._dataset = dataset
        self._dimension_sets = [tuple(int(d) for d in dims) for dims in dimension_sets]
        flat = [d for dims in self._dimension_sets for d in dims]
        if len(flat) != len(set(flat)):
            raise ValueError("dimension sets must be disjoint")
        self._graphs: list[DominantGraph] = []
        for dims in self._dimension_sets:
            projected = dataset.project(dims)
            if extended:
                graph = build_extended_graph(
                    projected, theta=theta, skyline=skyline, seed=seed
                )
            else:
                graph = build_dominant_graph(projected, skyline=skyline)
            self._graphs.append(graph)

    @staticmethod
    def even_split(dims: int, ways: int) -> list[tuple[int, ...]]:
        """Split ``range(dims)`` into ``ways`` near-equal contiguous sets.

        >>> NWayTraveler.even_split(10, 2)
        [(0, 1, 2, 3, 4), (5, 6, 7, 8, 9)]
        """
        if ways <= 0 or ways > dims:
            raise ValueError("ways must be in 1..dims")
        base, extra = divmod(dims, ways)
        sets, start = [], 0
        for i in range(ways):
            size = base + (1 if i < extra else 0)
            sets.append(tuple(range(start, start + size)))
            start += size
        return sets

    @property
    def dimension_sets(self) -> list[tuple[int, ...]]:
        """The dimension partition this traveler was built with."""
        return list(self._dimension_sets)

    @property
    def graphs(self) -> list[DominantGraph]:
        """The per-set Dominant Graphs (projected-coordinate indexes)."""
        return list(self._graphs)

    def _decompose(self, function: ScoringFunction) -> DecomposableFunction:
        if isinstance(function, DecomposableFunction):
            if [tuple(d) for d in function.dimension_sets] != self._dimension_sets:
                raise ValueError(
                    "decomposable function's dimension sets do not match the "
                    "traveler's partition"
                )
            return function
        if isinstance(function, LinearFunction):
            flat = sorted(d for dims in self._dimension_sets for d in dims)
            if flat != list(range(function.dims)):
                raise ValueError(
                    "dimension sets must cover every weighted dimension to "
                    "decompose a linear function"
                )
            return DecomposableFunction.from_linear(function, self._dimension_sets)
        raise TypeError(
            "NWayTraveler needs a DecomposableFunction (or a LinearFunction, "
            f"which decomposes automatically); got {type(function).__name__}"
        )

    def top_k(
        self,
        function: ScoringFunction,
        k: int,
        *,
        stats: AccessCounter | None = None,
    ) -> TopKResult:
        """Answer a top-k query by parallel ranked traversal of the sub-DGs.

        ``stats`` lets a caller supply the access counter every scored
        record (and every sub-function examination) is charged to — the
        query guard passes a budget-enforcing subclass here.
        """
        if k <= 0:
            raise ValueError("k must be positive")
        decomposed = self._decompose(function)
        stats = stats if stats is not None else AccessCounter()
        streams = [
            _RankedStream(graph, sub, stats)
            for graph, sub in zip(self._graphs, decomposed.sub_functions)
        ]

        scores: dict[int, float] = {}
        ranked: list[tuple[float, int]] = []  # (-F score, record_id), ascending

        def see(rid: int) -> None:
            """Compute F for a record the first time any stream surfaces it."""
            if rid in scores:
                return
            score = function(self._dataset.vector(rid))
            stats.count_computed(rid)
            scores[rid] = score
            bisect.insort(ranked, (-score, rid))

        # Line 3: every first-layer (real) record is scored by F up front.
        for graph in self._graphs:
            for rid in sorted(graph.layer(0)):
                if not graph.is_pseudo(rid):
                    see(rid)

        exhausted = False
        while not exhausted:
            heads = [stream.head_score() for stream in streams]
            if any(head is None for head in heads):
                # Some DG has streamed every record; the candidate list is
                # complete and the current ranking is exact.
                break
            beta = decomposed.combine(heads)
            delta = -ranked[k - 1][0] if len(ranked) >= k else float("-inf")
            if delta >= beta:
                break
            for graph, stream in zip(self._graphs, streams):
                rid = stream.advance()
                if rid is None:
                    exhausted = True
                    break
                if not graph.is_pseudo(rid):
                    see(rid)

        answers = [(-neg, rid) for neg, rid in ranked[:k]]
        return TopKResult.from_pairs(answers, stats, algorithm=self.name)
