"""Structured index verification: report problems instead of asserting.

:meth:`DominantGraph.validate` is the developer tool — it asserts and
stops at the first violation.  Operations needs the other shape: check a
(possibly untrusted, possibly reloaded) index end to end and report
*every* problem found, machine-readably.  ``verify_graph`` returns a list
of :class:`Issue` records; an empty list means the index satisfies every
Definition 2.3/2.4 invariant plus the Extended-DG coverage rules.

Used by ``python -m repro inspect --validate`` through
:func:`format_issues`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.dominance import dominates
from repro.core.graph import DominantGraph


@dataclass(frozen=True)
class Issue:
    """One invariant violation found in an index."""

    code: str
    message: str
    record_id: int | None = None

    def __str__(self) -> str:
        suffix = f" (record {self.record_id})" if self.record_id is not None else ""
        return f"[{self.code}] {self.message}{suffix}"


def verify_graph(graph: DominantGraph, max_issues: int = 100) -> list[Issue]:
    """Collect every invariant violation, up to ``max_issues``.

    Checks, in order: layer bookkeeping, edge soundness (consecutive
    layers + dominance + symmetric links), intra-layer dominance,
    orphaned records, real-boundary edge completeness, and pseudo-level
    placement.

    Examples
    --------
    >>> from repro.core.builder import build_dominant_graph
    >>> from repro.core.dataset import Dataset
    >>> graph = build_dominant_graph(Dataset([[2.0, 2.0], [1.0, 1.0]]))
    >>> verify_graph(graph)
    []
    """
    issues: list[Issue] = []

    def add(code: str, message: str, record_id: int | None = None) -> bool:
        issues.append(Issue(code=code, message=message, record_id=record_id))
        return len(issues) >= max_issues

    layers = [graph.layer(i) for i in range(graph.num_layers)]

    # Layer bookkeeping.
    seen: set = set()
    for index, layer in enumerate(layers):
        if not layer:
            if add("empty-layer", f"layer {index} is empty"):
                return issues
        for rid in sorted(layer):
            if rid in seen:
                if add("duplicate", f"record in multiple layers", rid):
                    return issues
            seen.add(rid)
            if graph.layer_of(rid) != index:
                if add("layer-of", "layer_of disagrees with layer contents", rid):
                    return issues

    # Dangling edges: adjacency entries pointing at ids in no layer.
    in_graph = set(graph.iter_records())
    for rid in sorted(graph.edge_endpoints() - in_graph):
        if add("dangling-edge", "edge endpoint is not placed in any layer", rid):
            return issues

    # Edge soundness.
    for rid in graph.iter_records():
        for child in sorted(graph.children_of(rid)):
            if child not in in_graph:
                continue  # already reported as dangling above
            if graph.layer_of(child) != graph.layer_of(rid) + 1:
                if add("edge-span", f"edge {rid}->{child} not consecutive", rid):
                    return issues
            if not dominates(graph.vector(rid), graph.vector(child)):
                if add("edge-dominance", f"edge {rid}->{child} without dominance", rid):
                    return issues
            if rid not in graph.parents_of(child):
                if add("edge-symmetry", f"edge {rid}->{child} missing reverse link", rid):
                    return issues

    # Intra-layer dominance and orphans.
    for index, layer in enumerate(layers):
        members = sorted(layer)
        for i, a in enumerate(members):
            va = graph.vector(a)
            for b in members[i + 1:]:
                vb = graph.vector(b)
                if dominates(va, vb) or dominates(vb, va):
                    if add("intra-layer", f"records {a} and {b} dominate in layer {index}"):
                        return issues
        if index > 0:
            for rid in sorted(layer):
                if not graph.parents_of(rid):
                    if add("orphan", f"record in layer {index} has no parent", rid):
                        return issues

    # Real-boundary completeness (pseudo boundaries are intentionally sparse).
    for index in range(1, len(layers)):
        above = sorted(layers[index - 1])
        if any(graph.is_pseudo(p) for p in above):
            continue
        for rid in sorted(layers[index]):
            expected = {
                p for p in above if dominates(graph.vector(p), graph.vector(rid))
            }
            if expected != set(graph.parents_of(rid)):
                if add(
                    "incomplete-parents",
                    "stored parents differ from previous-layer dominators",
                    rid,
                ):
                    return issues

    # Pseudo placement: pseudo levels are a prefix of the layer list.
    first_real = None
    for index, layer in enumerate(layers):
        has_pseudo = any(graph.is_pseudo(r) for r in layer)
        all_pseudo = layer and all(graph.is_pseudo(r) for r in layer)
        if first_real is None and not all_pseudo:
            first_real = index
        converted = {
            r for r in layer if graph.is_pseudo(r) and r < len(graph.dataset)
        }
        if (
            first_real is not None
            and index >= first_real
            and has_pseudo
            and set(r for r in layer if graph.is_pseudo(r)) - converted
        ):
            # mark_deleted converts real records in place; those are fine.
            if add(
                "pseudo-below-real",
                f"constructed pseudo record below the first real layer {first_real}",
            ):
                return issues
    return issues


def format_issues(issues: list[Issue]) -> str:
    """Readable multi-line report ('index OK' when the list is empty)."""
    if not issues:
        return "index OK: every invariant holds"
    lines = [f"{len(issues)} issue(s) found:"]
    lines.extend(f"  {issue}" for issue in issues)
    return "\n".join(lines)
