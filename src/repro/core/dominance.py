"""The dominance relation of Definition 2.2, vectorized.

Record ``R`` *dominates* ``R'`` when ``R.x_i >= R'.x_i`` in every dimension
and ``R.x_j > R'.x_j`` in at least one.  (This is the max-preferring mirror
of the skyline literature's min-preferring definition; the paper notes the
two are "essentially equivalent".)

Everything downstream — layer decomposition, DG edges, skyline baselines,
maintenance — reduces to the three primitives here:

- :func:`dominates` for a single pair,
- :func:`dominators_of` / :func:`dominated_by` for one-vs-many (numpy
  broadcast, no Python loop),
- :func:`dominance_matrix` for many-vs-many (used to build bipartite layer
  edges in one shot).
"""

from __future__ import annotations

import numpy as np


def dominates(a: np.ndarray, b: np.ndarray) -> bool:
    """True when vector ``a`` dominates vector ``b`` (Definition 2.2).

    >>> dominates(np.array([3.0, 2.0]), np.array([1.0, 2.0]))
    True
    >>> dominates(np.array([3.0, 2.0]), np.array([3.0, 2.0]))
    False
    """
    return bool(np.all(a >= b) and np.any(a > b))


def dominators_of(point: np.ndarray, block: np.ndarray) -> np.ndarray:
    """Boolean mask over ``block`` rows that dominate ``point``.

    ``block`` is ``(n, m)``; returns shape ``(n,)``.
    """
    ge = block >= point
    gt = block > point
    return np.logical_and(ge.all(axis=1), gt.any(axis=1))


def dominated_by(point: np.ndarray, block: np.ndarray) -> np.ndarray:
    """Boolean mask over ``block`` rows that ``point`` dominates."""
    ge = point >= block
    gt = point > block
    return np.logical_and(ge.all(axis=1), gt.any(axis=1))


def dominance_matrix(
    upper: np.ndarray, lower: np.ndarray, block_rows: int = 256
) -> np.ndarray:
    """Boolean matrix ``M[i, j]`` = "``upper[i]`` dominates ``lower[j]``".

    Used to build the bipartite parent-children edges between consecutive
    DG layers (Definition 2.4).  ``upper`` is ``(a, m)``, ``lower`` is
    ``(b, m)``; the result is ``(a, b)``.

    The broadcast is chunked over ``block_rows`` rows of ``upper`` at a
    time: a single ``(a, b, m)`` comparison needs ``2*a*b*m`` bytes of
    temporaries, which blows up on large consecutive layers (two 5,000-row
    layers in 10-d already need ~500 MB).  Chunking caps the peak at
    ``2*block_rows*b*m`` bytes with identical output.
    """
    a = upper.shape[0]
    b = lower.shape[0]
    out = np.empty((a, b), dtype=bool)
    lo = lower[None, :, :]  # (1, b, m)
    for start in range(0, a, block_rows):
        stop = min(start + block_rows, a)
        u = upper[start:stop, None, :]  # (chunk, 1, m)
        ge = (u >= lo).all(axis=2)
        gt = (u > lo).any(axis=2)
        np.logical_and(ge, gt, out=out[start:stop])
    return out


def maximal_mask(block: np.ndarray) -> np.ndarray:
    """Mask of rows of ``block`` dominated by no other row (Definition 2.3).

    This is the skyline of ``block`` under the max-preferring dominance.
    Implemented as a sort-filter scan (SFS): rows are visited in descending
    order of coordinate sum, so a row can only be dominated by an
    already-accepted maximal row — each visit is one vectorized check
    against the current maximal set.

    Duplicate rows: exact duplicates do not dominate each other
    (Definition 2.2 requires a strict inequality somewhere), so all copies
    are reported maximal when none is dominated.
    """
    n, m = block.shape
    if n == 0:
        return np.zeros(0, dtype=bool)
    order = np.argsort(-block.sum(axis=1), kind="stable")
    mask = np.zeros(n, dtype=bool)
    # Preallocated buffer of accepted maximal rows; a view of the filled
    # prefix is what each new row is checked against.
    buffer = np.empty((n, m), dtype=block.dtype)
    filled = 0
    for idx in order:
        point = block[idx]
        if filled and bool(dominators_of(point, buffer[:filled]).any()):
            continue
        mask[idx] = True
        buffer[filled] = point
        filled += 1
    return mask


def strictly_dominates(a: np.ndarray, b: np.ndarray) -> bool:
    """True when ``a`` is strictly larger in *every* dimension.

    Pseudo records are built to strictly dominate their cluster (Section
    IV-A); strict dominance also never ties under any strictly monotone
    function, which some tests rely on.
    """
    return bool(np.all(a > b))
