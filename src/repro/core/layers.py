"""Maximal-layer decomposition of a record set (Definition 2.3).

Layer ``L_1`` is the set of maximal (skyline) records of ``D``; layer
``L_i`` (i > 1) is the maximal set of what remains after peeling layers
``1..i-1``.  Equivalently — and this is the invariant the maintenance
algorithms rely on — a record's layer index equals the length of the
longest dominance chain ending at it::

    layer(t) = 1 + max({layer(s) : s dominates t} or {0})

Both characterizations are implemented: :func:`compute_layers` peels with a
pluggable skyline routine (the paper: "we can use any skyline algorithm to
find each layer of DG"), and :func:`layer_indices_by_chains` computes the
longest-chain form directly.  Tests assert they agree.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.core.dominance import dominators_of, maximal_mask
from repro.errors import InvariantViolation

# A skyline routine maps an (n, m) block to a boolean mask of its maximal
# rows.  Every algorithm in repro.skyline conforms to this signature via
# repro.skyline.as_mask_function.
SkylineFunction = Callable[[np.ndarray], np.ndarray]


def compute_layers(
    values: np.ndarray,
    skyline: SkylineFunction | None = None,
) -> list[np.ndarray]:
    """Decompose ``values`` into maximal layers by iterative peeling.

    Parameters
    ----------
    values:
        ``(n, m)`` record matrix.
    skyline:
        Function returning the maximal-row mask of a block; defaults to the
        vectorized sort-filter scan in :mod:`repro.core.dominance`.

    Returns
    -------
    list of 1-d integer arrays — record ids per layer, ``layers[0]`` being
    the paper's ``L_1``.  Every record appears in exactly one layer.

    Examples
    --------
    >>> layers = compute_layers(np.array([[2.0, 2.0], [1.0, 1.0], [3.0, 0.0]]))
    >>> [sorted(layer.tolist()) for layer in layers]
    [[0, 2], [1]]
    """
    if skyline is None:
        skyline = maximal_mask
    values = np.asarray(values, dtype=np.float64)
    remaining = np.arange(values.shape[0], dtype=np.intp)
    layers: list[np.ndarray] = []
    while remaining.size:
        mask = np.asarray(skyline(values[remaining]), dtype=bool)
        if not mask.any():
            raise InvariantViolation(
                "skyline routine returned an empty maximal set for a non-empty "
                "block; it would loop forever"
            )
        layers.append(remaining[mask])
        remaining = remaining[~mask]
    return layers


def layer_indices_by_chains(values: np.ndarray) -> np.ndarray:
    """Per-record layer index (1-based) via the longest-chain formula.

    Visits records in descending coordinate-sum order, so every dominator
    of a record is processed before the record itself; each visit is one
    vectorized dominator scan over the already-processed prefix.

    Returns an ``(n,)`` integer array with ``result[i]`` = layer of record
    ``i`` (1 = first maximal layer).
    """
    values = np.asarray(values, dtype=np.float64)
    n = values.shape[0]
    order = np.argsort(-values.sum(axis=1), kind="stable")
    layer = np.zeros(n, dtype=np.intp)
    for pos, idx in enumerate(order):
        prefix = order[:pos]
        if prefix.size:
            mask = dominators_of(values[idx], values[prefix])
            if mask.any():
                layer[idx] = int(layer[prefix[mask]].max()) + 1
                continue
        layer[idx] = 1
    return layer


def layers_from_indices(layer_of: np.ndarray) -> list[np.ndarray]:
    """Group record ids by layer index (inverse of the flat representation)."""
    layer_of = np.asarray(layer_of)
    if layer_of.size == 0:
        return []
    depth = int(layer_of.max())
    return [np.flatnonzero(layer_of == i + 1) for i in range(depth)]


def validate_layers(values: np.ndarray, layers: Sequence[np.ndarray]) -> None:
    """Raise ``AssertionError`` unless ``layers`` is a valid decomposition.

    Checks Definition 2.3: (1) the layers partition all record ids, (2) no
    record dominates another within a layer, and (3) every record in layer
    i > 1 is dominated by at least one record in layer i-1.
    """
    values = np.asarray(values, dtype=np.float64)
    seen: set = set()
    for layer in layers:
        ids = [int(i) for i in layer]
        assert not (set(ids) & seen), "record appears in more than one layer"
        seen.update(ids)
    assert seen == set(range(values.shape[0])), "layers do not cover the record set"

    for li, layer in enumerate(layers):
        block = values[np.asarray(layer, dtype=np.intp)]
        for row, rid in enumerate(layer):
            others = np.delete(block, row, axis=0)
            if others.size:
                assert not dominators_of(values[int(rid)], others).any(), (
                    f"record {int(rid)} dominated within its own layer {li + 1}"
                )
        if li > 0:
            above = values[np.asarray(layers[li - 1], dtype=np.intp)]
            for rid in layer:
                assert dominators_of(values[int(rid)], above).any(), (
                    f"record {int(rid)} in layer {li + 1} has no dominator in "
                    f"layer {li}"
                )
