"""Result object returned by every top-k algorithm in the repository.

Bundles the answer (record ids in rank order, with scores) together with
the :class:`~repro.metrics.counters.AccessCounter` that measured the work,
so the benchmark harness can read the paper's metrics off any algorithm
uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.metrics.counters import AccessCounter


@dataclass(frozen=True)
class TopKResult:
    """Top-k answer plus the access statistics of the run.

    Attributes
    ----------
    ids:
        Record ids in non-increasing score order (ties broken by id).
    scores:
        Matching query-function scores.
    stats:
        Access counter populated by the algorithm.
    algorithm:
        Human-readable name of the producing algorithm.
    tier:
        Which serving tier actually answered, when the query ran under
        :func:`repro.core.guard.run_query` (``"compiled"``,
        ``"reference"``, or ``"naive"``; empty for direct engine calls).
    epoch:
        Which published snapshot answered, when the query ran against a
        :class:`~repro.serve.index.ServingIndex` (monotone per publish;
        ``-1`` for direct engine calls).  Concurrency tests assert a
        reader's epoch matches exactly one published snapshot — the
        snapshot-isolation contract.
    """

    ids: tuple
    scores: tuple
    stats: AccessCounter = field(compare=False)
    algorithm: str = field(default="", compare=False)
    tier: str = field(default="", compare=False)
    epoch: int = field(default=-1, compare=False)

    def __post_init__(self) -> None:
        if len(self.ids) != len(self.scores):
            raise ValueError("ids and scores must have equal length")
        for earlier, later in zip(self.scores, self.scores[1:]):
            if later > earlier + 1e-12:
                raise ValueError("scores must be non-increasing")

    @classmethod
    def from_pairs(
        cls,
        pairs: Sequence,
        stats: AccessCounter,
        algorithm: str = "",
    ) -> "TopKResult":
        """Build from an iterable of ``(score, record_id)`` pairs."""
        ids = tuple(int(rid) for _, rid in pairs)
        scores = tuple(float(score) for score, _ in pairs)
        return cls(ids=ids, scores=scores, stats=stats, algorithm=algorithm)

    def __len__(self) -> int:
        return len(self.ids)

    def __iter__(self) -> Iterator:
        return iter(zip(self.ids, self.scores))

    @property
    def id_set(self) -> frozenset:
        """The answer as an unordered set of record ids."""
        return frozenset(self.ids)

    def score_multiset(self) -> tuple:
        """Sorted scores — the canonical, tie-insensitive answer signature.

        Two correct top-k algorithms may return different id sets when
        scores tie; their score multisets always agree, so tests compare
        this.
        """
        return tuple(sorted(self.scores, reverse=True))

    def __repr__(self) -> str:
        name = self.algorithm or "TopKResult"
        preview = ", ".join(
            f"{rid}:{score:.4g}" for rid, score in list(self)[:5]
        )
        suffix = ", ..." if len(self) > 5 else ""
        return f"{name}(k={len(self)}, [{preview}{suffix}], computed={self.stats.computed})"
