"""Cost model of the Basic Traveler (paper Section III).

Definition 3.1 measures cost as the number of records scored by the query
function.  Theorem 3.1 characterizes the search space exactly::

    S1 = S2 ∪ S3

where ``S2`` is the final top-(k-1) answer set, and ``S3`` is the skyline
of the complement of ``S2``.  Theorem 3.2 turns that into the estimate
``cost = k - 1 + |skyline(D - S2)| ≈ k + |skyline(D)|``, because removing
k-1 records barely changes the skyline cardinality of a large set.

This module computes the exact sets (for validating the theorem against a
live Traveler run) and the closed-form estimate (via the skyline
cardinality estimators in :mod:`repro.skyline.cardinality`).

Erratum (reproduced empirically; see tests/test_cost.py): Theorem 3.1 as
stated is exact in one direction only.  ``S2 ∪ S3 ⊆ S1`` always holds —
every record of the predicted set really is scored.  The converse
direction in the paper's proof silently equates "a record in S2-bar
dominating R" with "a parent of R", but a dominator from a non-adjacent
layer is *not* a DG parent: a record whose parents are all in the final
top-(k-1) can still be dominated by such a non-parent ancestor outside it,
making it computed yet absent from S2 ∪ S3.  Empirically the surplus is a
handful of records (a few percent), so Theorem 3.2's cost *estimate* is
unaffected in practice; ``search_space`` returns the exact predicted set
and callers should treat it as a tight lower bound on the measured cost.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.dataset import Dataset
from repro.core.dominance import maximal_mask
from repro.core.functions import ScoringFunction
from repro.skyline.cardinality import expected_skyline_uniform


@dataclass(frozen=True)
class SearchSpace:
    """The exact Theorem 3.1 decomposition for one query.

    Attributes
    ----------
    s2:
        Final top-(k-1) record ids (the paper's ``S2``).
    s3:
        Skyline of ``D - S2`` (the paper's ``S3``).
    predicted:
        ``S2 ∪ S3`` — the records Theorem 3.1 says Basic Traveler scores.
    """

    s2: frozenset
    s3: frozenset
    predicted: frozenset

    @property
    def cost(self) -> int:
        """Predicted number of scored records: |S2 ∪ S3|."""
        return len(self.predicted)


def top_k_bruteforce(dataset: Dataset, function: ScoringFunction, k: int) -> list:
    """Exact top-k ids by full scan, ties broken by smaller id.

    The ground truth every algorithm's tests compare against (and the
    ``S2`` ingredient of the cost model).
    """
    scores = function.score_many(dataset.values)
    order = np.lexsort((np.arange(len(dataset)), -scores))
    return [int(i) for i in order[:k]]


def search_space(dataset: Dataset, function: ScoringFunction, k: int) -> SearchSpace:
    """Compute the exact S2 / S3 / S1 sets of Theorem 3.1.

    Ties caveat: Theorem 3.1 assumes the top-(k-1) set is unambiguous.
    With tied scores several answer sets are valid and the Traveler's
    choice may differ from the brute-force tie-break here; tests therefore
    use generic-position (distinct-score) inputs for exact-equality checks.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    s2_ids = frozenset(top_k_bruteforce(dataset, function, k - 1))
    complement = np.asarray(
        [i for i in range(len(dataset)) if i not in s2_ids], dtype=np.intp
    )
    if complement.size:
        mask = maximal_mask(dataset.values[complement])
        s3_ids = frozenset(int(i) for i in complement[mask])
    else:
        s3_ids = frozenset()
    return SearchSpace(s2=s2_ids, s3=s3_ids, predicted=s2_ids | s3_ids)


def predicted_cost(dataset: Dataset, function: ScoringFunction, k: int) -> int:
    """Exact Theorem 3.1 cost prediction: |S2 ∪ S3| = k-1 + |skyline(D-S2)|."""
    return search_space(dataset, function, k).cost


def estimated_cost(n: int, dims: int, k: int) -> float:
    """Theorem 3.2 closed-form estimate for independent uniform data.

    ``cost ≈ k - 1 + E[|skyline|]`` where the expected skyline cardinality
    of ``n`` i.i.d. uniform records in ``dims`` dimensions comes from the
    Godfrey/Bentley harmonic formula (see
    :func:`repro.skyline.cardinality.expected_skyline_uniform`).
    """
    if k <= 0:
        raise ValueError("k must be positive")
    return (k - 1) + expected_skyline_uniform(n, dims)
