"""Aggregate monotone query functions (Definition 2.1).

A top-k preference query is parameterized by an *aggregate monotone*
function ``F``: whenever every attribute of record ``X`` is at least the
matching attribute of ``Y``, ``F(X) >= F(Y)``.  Monotonicity is the only
property the Dominant Graph needs (Lemma 2.1); unlike ONION, AppRI, PREFER
and LPTA, DG is *not* restricted to linear functions, so this module
provides a family of monotone functions and a protocol for user-defined
ones.

All functions are vectorized: ``score_many`` evaluates an ``(n, m)`` block
in one numpy call, and ``__call__`` scores a single vector.  The N-Way
Traveler (Section IV-C) additionally needs a *decomposable* function
``F(x) = G(f1(x_I1), ..., fn(x_In))`` with monotone ``G``; see
:class:`DecomposableFunction`.

Tie contract: every engine in this repo reports equal-score answers in
ascending record-id order — the global ``(-score, id)`` ordering.  The
bundled functions additionally expose ``strictly_monotone`` (``True``
when strict dominance implies a strictly larger score, so dominated
records can never tie their dominators): the reference Travelers use it
to skip tie-closure probing at the k-th boundary.  Functions that admit
dominated ties — ``MinFunction``, zero weights, zero-annihilated
products — return ``False`` and pay a few extra probes when the k-th
score is tied.  User-defined functions without the attribute are treated
as non-strict, which is always safe.

Determinism contract: for every bundled function, ``__call__(v)`` returns
bit-for-bit the same float as the matching row of ``score_many(block)``,
for any batch size and row subset.  The compiled DG engine
(:mod:`repro.core.compiled`) scores unlocked records in batches while the
reference Travelers score one record per call; this contract is what makes
the two engines return bit-identical results.  It is why the weighted sums
below use elementwise multiply + ``np.sum`` (pairwise summation over a
fixed-length row, independent of batch shape) instead of BLAS ``dot`` /
``gemv``, whose reduction order — and therefore last-bit rounding — changes
with the batch size.
"""

from __future__ import annotations

from typing import Callable, Protocol, Sequence, runtime_checkable

import numpy as np


@runtime_checkable
class ScoringFunction(Protocol):
    """Protocol for aggregate monotone query functions.

    Implementations must be monotone non-decreasing in every attribute;
    :func:`repro.core.functions.check_monotone` spot-checks this property
    and is used by the test suite on every bundled function.
    """

    def __call__(self, vector: np.ndarray) -> float:
        """Score a single ``(m,)`` attribute vector."""
        ...

    def score_many(self, block: np.ndarray) -> np.ndarray:
        """Score an ``(n, m)`` block of records, returning ``(n,)`` scores."""
        ...


#: Selection predicate for constrained queries: ``vector -> bool``.
#: Records failing it are traversed (they still unlock subtrees) but are
#: never reported; see :meth:`AdvancedTraveler.top_k`.
WherePredicate = Callable[[np.ndarray], bool]


class LinearFunction:
    """Weighted sum ``F(x) = sum_i w_i * x_i`` with non-negative weights.

    This is the query class supported by every baseline in the paper's
    evaluation ("to enable fair performance comparison, we only use linear
    function in comparison study", Section VI).

    Examples
    --------
    >>> f = LinearFunction([0.6, 0.4])                # the running example
    >>> round(f(np.array([10.0, 5.0])), 6)
    8.0
    """

    def __init__(self, weights: Sequence[float]) -> None:
        w = np.asarray(weights, dtype=np.float64)
        if w.ndim != 1 or w.size == 0:
            raise ValueError("weights must be a non-empty 1-d sequence")
        if not np.all(np.isfinite(w)):
            raise ValueError("linear top-k weights must be finite (no NaN/inf)")
        if np.any(w < 0):
            raise ValueError("linear top-k weights must be non-negative for monotonicity")
        self.weights = w
        self.weights.setflags(write=False)

    @property
    def dims(self) -> int:
        """Number of attributes the function consumes."""
        return self.weights.size

    @property
    def strictly_monotone(self) -> bool:
        """True when every weight is positive: dominated records cannot tie.

        A zero weight ignores its attribute, so a record strictly better
        only there would tie its dominator; such instances report False.
        """
        return bool(np.all(self.weights > 0))

    def __call__(self, vector: np.ndarray) -> float:
        return float(np.sum(self.weights * vector))

    def score_many(self, block: np.ndarray) -> np.ndarray:
        """Score an ``(n, m)`` block; rows match ``__call__`` bit-for-bit."""
        return np.sum(np.asarray(block, dtype=np.float64) * self.weights, axis=1)

    def restrict(self, dimensions: Sequence[int]) -> "LinearFunction":
        """Partial sum over a dimension subset (N-Way sub-function f_i)."""
        return LinearFunction(self.weights[list(dimensions)])

    def __repr__(self) -> str:
        return f"LinearFunction({self.weights.tolist()})"


class ProductFunction:
    """Product ``F(x) = prod_i x_i^{w_i}`` for non-negative data and weights.

    Monotone on the non-negative orthant; an example of the non-linear
    monotone queries that DG supports but ONION/PREFER/AppRI cannot.
    """

    def __init__(self, weights: Sequence[float]) -> None:
        w = np.asarray(weights, dtype=np.float64)
        if not np.all(np.isfinite(w)):
            raise ValueError("product weights must be finite (no NaN/inf)")
        if np.any(w < 0):
            raise ValueError("product weights must be non-negative")
        self.weights = w
        self.weights.setflags(write=False)

    @property
    def dims(self) -> int:
        """Number of attributes the function consumes."""
        return self.weights.size

    @property
    def strictly_monotone(self) -> bool:
        """Always False: a zero attribute annihilates the whole product.

        ``(2, 0)`` strictly dominates ``(1, 0)`` yet both score 0, so
        dominated ties are possible regardless of the weights.
        """
        return False

    def __call__(self, vector: np.ndarray) -> float:
        v = np.asarray(vector, dtype=np.float64)
        if np.any(v < 0):
            raise ValueError("ProductFunction requires non-negative attributes")
        return float(np.prod(np.power(v, self.weights)))

    def score_many(self, block: np.ndarray) -> np.ndarray:
        """Score an ``(n, m)`` block of non-negative records at once."""
        b = np.asarray(block, dtype=np.float64)
        if np.any(b < 0):
            raise ValueError("ProductFunction requires non-negative attributes")
        return np.prod(np.power(b, self.weights), axis=1)

    def __repr__(self) -> str:
        return f"ProductFunction({self.weights.tolist()})"


class MinFunction:
    """Bottleneck aggregate ``F(x) = min_i x_i`` (monotone, non-linear)."""

    @property
    def strictly_monotone(self) -> bool:
        """False: improving a non-bottleneck attribute leaves the min tied."""
        return False

    def __call__(self, vector: np.ndarray) -> float:
        return float(np.min(vector))

    def score_many(self, block: np.ndarray) -> np.ndarray:
        """Row-wise minimum of an ``(n, m)`` block."""
        return np.min(np.asarray(block, dtype=np.float64), axis=1)

    def __repr__(self) -> str:
        return "MinFunction()"


class WeightedPowerFunction:
    """Weighted power mean ``F(x) = (sum_i w_i * x_i^p)^(1/p)`` with ``p > 0``.

    Monotone for non-negative data; interpolates between weighted sum
    (``p = 1``) and max-like behaviour as ``p`` grows.
    """

    def __init__(self, weights: Sequence[float], p: float = 2.0) -> None:
        if not np.isfinite(p) or p <= 0:
            raise ValueError("p must be positive and finite for monotonicity")
        w = np.asarray(weights, dtype=np.float64)
        if not np.all(np.isfinite(w)):
            raise ValueError("weights must be finite (no NaN/inf)")
        if np.any(w < 0):
            raise ValueError("weights must be non-negative")
        self.weights = w
        self.weights.setflags(write=False)
        self.p = float(p)

    @property
    def dims(self) -> int:
        """Number of attributes the function consumes."""
        return self.weights.size

    @property
    def strictly_monotone(self) -> bool:
        """True when every weight is positive (see LinearFunction)."""
        return bool(np.all(self.weights > 0))

    def __call__(self, vector: np.ndarray) -> float:
        v = np.asarray(vector, dtype=np.float64)
        if np.any(v < 0):
            raise ValueError("WeightedPowerFunction requires non-negative attributes")
        return float(np.power(np.sum(self.weights * np.power(v, self.p)), 1.0 / self.p))

    def score_many(self, block: np.ndarray) -> np.ndarray:
        """Score an ``(n, m)`` block; rows match ``__call__`` bit-for-bit."""
        b = np.asarray(block, dtype=np.float64)
        if np.any(b < 0):
            raise ValueError("WeightedPowerFunction requires non-negative attributes")
        return np.power(np.sum(np.power(b, self.p) * self.weights, axis=1), 1.0 / self.p)

    def __repr__(self) -> str:
        return f"WeightedPowerFunction({self.weights.tolist()}, p={self.p})"


class DecomposableFunction:
    """``F(x) = G(f1(x_I1), ..., fn(x_In))`` for the N-Way Traveler.

    Section IV-C assumes the query function decomposes over ``n`` disjoint
    dimension sets ``I_i`` with an aggregate monotone combiner ``G``.  The
    common case — a linear function split by dimension sets with ``G = sum``
    — is built by :meth:`from_linear`.

    Parameters
    ----------
    dimension_sets:
        Disjoint index sets covering a subset (usually all) of the m
        dimensions.
    sub_functions:
        One scoring function per dimension set; ``f_i`` consumes vectors
        restricted to ``I_i``.
    combiner:
        Monotone ``G`` mapping the tuple of sub-scores to the final score.
        Defaults to the sum.
    """

    def __init__(
        self,
        dimension_sets: Sequence[Sequence[int]],
        sub_functions: Sequence[ScoringFunction],
        combiner: Callable[[np.ndarray], float] | None = None,
    ) -> None:
        if len(dimension_sets) != len(sub_functions):
            raise ValueError("need one sub-function per dimension set")
        if len(dimension_sets) == 0:
            raise ValueError("need at least one dimension set")
        flat: list[int] = []
        for dims in dimension_sets:
            flat.extend(dims)
        if len(flat) != len(set(flat)):
            raise ValueError("dimension sets must be disjoint")
        self.dimension_sets = [tuple(d) for d in dimension_sets]
        self.sub_functions = list(sub_functions)
        self.combiner = combiner if combiner is not None else _sum_combiner

    @classmethod
    def from_linear(
        cls, function: LinearFunction, dimension_sets: Sequence[Sequence[int]]
    ) -> "DecomposableFunction":
        """Split a linear function into per-set partial sums with G = sum."""
        subs = [function.restrict(dims) for dims in dimension_sets]
        return cls(dimension_sets, subs)

    @property
    def n_ways(self) -> int:
        """Number of dimension sets (the "N" in N-Way)."""
        return len(self.dimension_sets)

    @property
    def strictly_monotone(self) -> bool:
        """False: the combiner ``G`` is only known to be monotone."""
        return False

    def sub_score(self, i: int, vector: np.ndarray) -> float:
        """Score of the i-th sub-function on a *full* attribute vector."""
        return self.sub_functions[i](vector[list(self.dimension_sets[i])])

    def combine(self, sub_scores: Sequence[float]) -> float:
        """Apply G to a tuple of per-set sub-scores (the β bound of Alg. 3)."""
        return float(self.combiner(np.asarray(sub_scores, dtype=np.float64)))

    def __call__(self, vector: np.ndarray) -> float:
        subs = [self.sub_score(i, vector) for i in range(self.n_ways)]
        return self.combine(subs)

    def score_many(self, block: np.ndarray) -> np.ndarray:
        """Score an ``(n, m)`` block: sub-functions per set, then G."""
        block = np.asarray(block, dtype=np.float64)
        parts = np.empty((block.shape[0], self.n_ways), dtype=np.float64)
        for i, (dims, f) in enumerate(zip(self.dimension_sets, self.sub_functions)):
            parts[:, i] = f.score_many(block[:, list(dims)])
        return np.array([self.combiner(row) for row in parts], dtype=np.float64)

    def __repr__(self) -> str:
        return f"DecomposableFunction(n_ways={self.n_ways}, sets={self.dimension_sets})"


def _sum_combiner(sub_scores: np.ndarray) -> float:
    return float(np.sum(sub_scores))


def check_monotone(
    function: ScoringFunction,
    dims: int,
    trials: int = 200,
    rng: np.random.Generator | None = None,
    low: float = 0.0,
    high: float = 1.0,
) -> bool:
    """Spot-check Definition 2.1 on random dominated pairs.

    Draws ``trials`` random vectors, bumps a random subset of coordinates
    upward, and verifies the score does not decrease.  Returns ``True`` when
    every trial passes.  This is a testing utility, not a proof.
    """
    rng = rng or np.random.default_rng(0)
    for _ in range(trials):
        x = rng.uniform(low, high, size=dims)
        bump = rng.uniform(0.0, high - low, size=dims) * (rng.random(dims) < 0.5)
        y = np.minimum(x + bump, high)
        if function(y) < function(x) - 1e-12:
            return False
    return True
