"""Progressive top-k: rank records lazily, without fixing k in advance.

Algorithm 1 needs k up front only to bound its candidate list; dropping
the truncation turns the Traveler into an *incremental* ranking operator
— ask for one more answer and it expands exactly the newly unlocked
children.  This is the natural extension for paginated result screens
("next 10") and for rank-join-style consumers, and it is the engine the
N-Way Traveler already uses per sub-graph.

The generator yields ``(record_id, score)`` pairs in non-increasing score
order (ties by id), never yields pseudo records, and touches only the
part of the graph the consumed prefix required: stopping after ``i``
answers costs the same search space as a top-``i`` query without
truncation.
"""

from __future__ import annotations

import heapq
from typing import Iterator

from repro.core.functions import ScoringFunction
from repro.core.graph import DominantGraph
from repro.core.result import TopKResult
from repro.metrics.counters import AccessCounter


def iter_ranked(
    graph: DominantGraph,
    function: ScoringFunction,
    stats: AccessCounter | None = None,
) -> Iterator[tuple[int, float]]:
    """Yield ``(record_id, score)`` best-first over a (possibly Extended) DG.

    Parameters
    ----------
    graph:
        A plain or Extended Dominant Graph.
    function:
        Any aggregate monotone scoring function.
    stats:
        Optional counter; every scored record (pseudo included) is charged
        one computation, exactly like the Traveler classes.

    Examples
    --------
    >>> from repro.core.builder import build_dominant_graph
    >>> from repro.core.dataset import Dataset
    >>> from repro.core.functions import LinearFunction
    >>> ds = Dataset([[1.0, 2.0], [2.0, 1.0], [0.2, 0.2]])
    >>> graph = build_dominant_graph(ds)
    >>> ranking = iter_ranked(graph, LinearFunction([0.5, 0.5]))
    >>> next(ranking)
    (0, 1.5)
    """
    if stats is None:
        stats = AccessCounter()
    heap: list = []  # (-score, record_id)
    computed: set = set()
    popped: set = set()

    def score(rid: int) -> None:
        value = function(graph.vector(rid))
        stats.count_computed(rid, pseudo=graph.is_pseudo(rid))
        computed.add(rid)
        heapq.heappush(heap, (-value, rid))

    if graph.num_layers:
        for rid in sorted(graph.layer(0)):
            score(rid)

    while heap:
        neg_score, rid = heapq.heappop(heap)
        popped.add(rid)
        for child in sorted(graph.children_of(rid)):
            if child in computed:
                continue
            if any(parent not in popped for parent in graph.parents_of(child)):
                continue
            score(child)
        if not graph.is_pseudo(rid):
            yield rid, -neg_score


def top_k_progressive(
    graph: DominantGraph,
    function: ScoringFunction,
    k: int,
    *,
    stats: AccessCounter | None = None,
) -> TopKResult:
    """Materialize the first k answers of :func:`iter_ranked`.

    A convenience wrapper returning the same
    :class:`~repro.core.result.TopKResult` shape as the Traveler classes;
    unlike them it never truncates its candidate list, so its search space
    can only be larger or equal (tests quantify the difference).
    ``stats`` lets a caller supply the counter every scored record is
    charged to — the query guard passes a budget-enforcing subclass.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    stats = stats if stats is not None else AccessCounter()
    pairs: list[tuple[float, int]] = []
    for rid, value in iter_ranked(graph, function, stats):
        pairs.append((value, rid))
        if len(pairs) == k:
            break
    return TopKResult.from_pairs(pairs, stats, algorithm="progressive-traveler")
