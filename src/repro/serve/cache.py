"""Epoch-keyed LRU cache of top-k results for the serving layer.

Top-k serving traffic is heavily repetitive — the same handful of weight
vectors (a UI's preference presets, a dashboard's fixed panels) arrive
over and over between index mutations.  Those answers are pure functions
of ``(snapshot epoch, weight vector, k)``, which makes caching trivially
safe: the epoch is part of the key, so a writer publish — which bumps
the epoch — orphans every cached entry at once without any invalidation
protocol.  :meth:`ResultCache.purge_other_epochs` then reclaims the
orphans' memory on the next publish.

Only unfiltered, unbudgeted linear queries are cached
(:func:`cache_key` returns ``None`` otherwise): a ``where`` predicate is
an opaque callable with no stable identity, and budgeted queries must
re-run to re-enforce their budgets.  Hit/miss/eviction counters are
surfaced through :meth:`ResultCache.stats` into
:meth:`~repro.serve.index.ServingIndex.health`.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Optional, Tuple

from repro.core.functions import LinearFunction, ScoringFunction
from repro.core.result import TopKResult

#: Cache key: ``(epoch, weight bytes, k)``.
CacheKey = Tuple[int, bytes, int]


def cache_key(
    function: ScoringFunction, k: int, epoch: int
) -> "Optional[CacheKey]":
    """Key for a cacheable query, or ``None`` when it must not be cached.

    Only :class:`~repro.core.functions.LinearFunction` queries have a
    stable, hashable identity (the exact float64 weight bytes); general
    monotone callables do not, so they bypass the cache.
    """
    if isinstance(function, LinearFunction):
        return (int(epoch), function.weights.tobytes(), int(k))
    return None


class ResultCache:
    """Thread-safe LRU of :class:`~repro.core.result.TopKResult` values.

    ``capacity`` bounds the entry count; least-recently-*used* entries
    are evicted (a hit refreshes recency).  All operations take one
    internal lock — the cached values themselves are immutable.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = int(capacity)
        self._entries: "OrderedDict[CacheKey, TopKResult]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._purged = 0

    def get(self, key: "Optional[CacheKey]") -> "Optional[TopKResult]":
        """Look up a cached result; counts a miss for uncacheable keys."""
        if key is None:
            return None
        with self._lock:
            result = self._entries.get(key)
            if result is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return result

    def put(self, key: "Optional[CacheKey]", result: TopKResult) -> None:
        """Insert a result, evicting the least recently used past capacity."""
        if key is None:
            return
        with self._lock:
            self._entries[key] = result
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1

    def purge_other_epochs(self, epoch: int) -> int:
        """Drop every entry not keyed to ``epoch``; returns the count.

        Called by the writer after each publish: entries from older
        epochs can never hit again (the epoch is in the key), so this
        only reclaims memory early — correctness never depends on it.
        """
        with self._lock:
            stale = [key for key in self._entries if key[0] != epoch]
            for key in stale:
                del self._entries[key]
            self._purged += len(stale)
            return len(stale)

    def clear(self) -> None:
        """Drop everything (counters survive)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> "dict[str, int]":
        """Hit/miss/eviction/purge counters plus current size."""
        with self._lock:
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "purged": self._purged,
            }
