"""Durable concurrent serving: WAL, snapshots, admission, recovery.

The serving subsystem runs the paper's Section V maintenance *while
queries are in flight* and survives being killed at any instant:

- :mod:`repro.serve.wal` — append-only, CRC-per-record write-ahead log
  with configurable fsync policies and torn-tail-tolerant scanning.
- :mod:`repro.serve.index` — :class:`ServingIndex`: RCU-rotated
  immutable snapshots for readers, a single write-ahead-logged writer,
  LevelDB-style ``CURRENT`` checkpoints, and startup recovery.
- :mod:`repro.serve.admission` — bounded concurrency, load shedding,
  and retry-with-backoff around transient engine faults.
- :mod:`repro.serve.cache` — epoch-keyed LRU result cache, invalidated
  implicitly by every writer publish.

See ``docs/serving.md`` for the architecture and the durability matrix,
``docs/parallel.md`` for the multi-process query fabric the index can
attach (``workers=``).
"""

from repro.serve.admission import AdmissionController, retry_with_backoff
from repro.serve.cache import ResultCache, cache_key
from repro.serve.index import (
    ServingIndex,
    ServingSnapshot,
    apply_op,
    snapshot_scan,
)
from repro.serve.wal import (
    FSYNC_POLICIES,
    WALScan,
    WriteAheadLog,
    create_wal,
    reset_wal,
    scan_wal,
    wal_record_offsets,
)

__all__ = [
    "AdmissionController",
    "FSYNC_POLICIES",
    "ResultCache",
    "ServingIndex",
    "ServingSnapshot",
    "WALScan",
    "WriteAheadLog",
    "apply_op",
    "cache_key",
    "create_wal",
    "reset_wal",
    "retry_with_backoff",
    "scan_wal",
    "snapshot_scan",
    "wal_record_offsets",
]
