"""Durable concurrent serving of a Dominant Graph index.

:class:`ServingIndex` turns the library's single-threaded index into a
process that can take reads and writes at the same time, crash at any
instant, and come back serving the same answers.  Three ideas carry all
of it:

**RCU snapshot rotation (reads).**  Queries never touch the mutable
:class:`~repro.core.graph.DominantGraph`.  They run against an immutable
:class:`~repro.core.compiled.CompiledDG` published in a
:class:`ServingSnapshot` tagged with a monotone *epoch*.  The writer
applies a maintenance batch to its private graph, compiles the result,
and swaps the snapshot reference in one atomic store — so a reader that
pinned the old snapshot keeps answering from a consistent pre-batch
world, and every reader observes either the pre-batch or the post-batch
index, never a half-applied mix.  (Snapshots are
:meth:`~repro.core.compiled.CompiledDG.detach`\\ ed: staleness tracking
is a single-version safety net, and this is deliberately multi-version.)

**Checkpoint + write-ahead log (durability).**  Durable state is the
last :func:`~repro.core.io.save_graph` checkpoint plus an append-only
:class:`~repro.serve.wal.WriteAheadLog` of every operation applied since
(paper Section V's inserts/deletes, plus the §V-B mark-as-deleted).
Every mutation is framed, CRC'd, and (per the fsync policy) synced
before the call returns.  Checkpointing follows the LevelDB ``CURRENT``
pattern: write ``checkpoint-<seq>.npz`` durably, atomically swap the
``CURRENT`` pointer file to name it, then atomically replace the WAL
with an empty successor.  A crash between any two of those steps is
recoverable: recovery loads whatever ``CURRENT`` names and replays WAL
records *with sequence greater than the checkpoint's watermark*, so
double-applied and never-applied prefixes are both impossible.

**Single writer (maintenance).**  The paper's maintenance algorithms
are local but not concurrent; a writer lock serializes them, exactly as
cheap as the paper assumes.  A mutation that fails *validation* raises
before anything is touched (see
:func:`~repro.core.maintenance.insert_many`'s all-or-nothing contract);
a mutation that fails *mid-apply* — which the validation contract makes
a bug, not an input — poisons the writer: the half-mutated graph is
never published or logged, reads continue from the last good snapshot,
and writes refuse until a restart recovers from checkpoint + WAL.

**Base+delta overlay (O(changes) publish).**  Recompiling on every
mutation makes publish cost O(n) regardless of batch size.  With
``overlay_limit`` > 0 (the default) a publish instead keeps the last
compiled :class:`CompiledDG` as an immutable *base* and describes the
mutation in a :class:`~repro.core.overlay.DeltaOverlay` — fresh records
plus a deletion mask over base rows — frozen from the writer's
:class:`~repro.core.maintenance.OverlayBuilder` in O(overlay) time.
Queries merge the masked base sweep with an exhaustive delta scan,
bit-identical to a recompile (:mod:`repro.core.overlay` carries the
argument; the parity suites enforce it).  When the overlay crosses
``overlay_limit`` the publish folds it synchronously (a full recompile
under the new epoch); a background :class:`~repro.serve.compactor.Compactor`
(enabled via ``compact_interval``) folds earlier — on half the limit or
on overlay age — *under the unchanged epoch*, which is sound because a
compacted snapshot answers bit-identically to the base+overlay snapshot
it replaces.  The fabric keeps serving whole compiled snapshots: batch
reads ride the workers only while the overlay is empty, and compaction
(not each mutation) republishes the shared segment.  Overlay-application
failure and compactor failure both degrade to the full-recompile
publish — never wrong, only slower.  Recovery replays the WAL and
compiles from scratch, which *is* a compaction, so crash recovery is
bit-identical to full WAL replay by construction.

Query admission is bounded (:mod:`repro.serve.admission`): overload
sheds instead of queueing without bound, transient engine faults are
retried with backoff and then degraded to a scan *of the same pinned
snapshot* (so even a degraded answer is epoch-consistent), and budgets
ride :class:`~repro.core.guard.BudgetedAccessCounter` unchanged.

Directory layout::

    <dir>/CURRENT               {"checkpoint": ..., "applied_seq": N}
    <dir>/checkpoint-<seq>.dgs  repro.store checkpoint (graph payload)
    <dir>/wal.log               repro.serve.wal
    <dir>/delta-current.dgs     overlay sidecar (kind="delta"; derived
                                data for doctor/tooling, rewritten per
                                delta publish, removed at compaction)
    <dir>/snapshots/            fabric snapshot spool (store files, when
                                workers > 0; derived data, never durable)
    <dir>/quarantine/           checkpoints that failed verification

Checkpoints are written in the binary store format (:mod:`repro.store`):
checksummed per section, stamped with the WAL sequence they cover, and
scrubbabale in place.  Directories created by older builds (``.npz``
checkpoints) still open — the loader dispatches on the extension the
``CURRENT`` pointer names — and convert to the store format at their
next checkpoint.
"""

from __future__ import annotations

import json
import os
import threading
import time
import warnings
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Any, Iterable

import numpy as np

from repro.core.builder import build_dominant_graph
from repro.core.compiled import CompiledDG, batch_top_k
from repro.core.dataset import Dataset
from repro.core.functions import ScoringFunction, WherePredicate
from repro.core.graph import DominantGraph
from repro.core.guard import BudgetedAccessCounter
from repro.core.io import fsync_directory, load_graph, save_graph
from repro.core.maintenance import (
    OverlayBuilder,
    delete_record,
    insert_record,
    mark_deleted,
    validate_delete_batch,
    validate_insert_batch,
)
from repro.core.overlay import (
    DeltaOverlay,
    alive_record_ids,
    overlay_batch_top_k,
    overlay_top_k,
)
from repro.core.result import TopKResult
from repro.metrics.counters import AccessCounter
from repro.errors import (
    DeadlineExceeded,
    DegradedResultWarning,
    IndexCorruptionError,
    QueryBudgetExceeded,
    ServiceUnavailable,
    StoreCorruptionError,
    WALCorruptionError,
)
from repro.parallel.executor import ParallelQueryExecutor
from repro.resilience.breaker import BreakerBoard
from repro.resilience.deadline import Deadline
from repro.resilience.policy import RetryPolicy, TimeoutPolicy
from repro.serve.admission import AdmissionController
from repro.serve.cache import CacheKey, ResultCache, cache_key
from repro.serve.compactor import Compactor
from repro.store.deltastore import save_delta_store
from repro.store.graphstore import load_graph_store, save_graph_store
from repro.store.mapped import MappedStore, open_store
from repro.store.scrub import StoreScrubber
from repro.serve.wal import WriteAheadLog, create_wal, scan_wal

CURRENT_NAME = "CURRENT"
WAL_NAME = "wal.log"
_CHECKPOINT_FMT = "checkpoint-{seq:016d}.dgs"
#: Overlay sidecar name (kind="delta" store file; derived data).
DELTA_SIDECAR = "delta-current.dgs"
#: Subdirectory holding the fabric's snapshot spool (derived data).
SNAPSHOT_SPOOL = "snapshots"
#: Subdirectory where damaged checkpoints are preserved, never served.
QUARANTINE_DIR = "quarantine"
#: How many recent publish latencies back the p50/p99 health columns.
_PUBLISH_SAMPLE_WINDOW = 512
#: Sidecar spool throttle: at most one rewrite per this many seconds
#: (the first delta publish after a fold always spools).
_SIDECAR_MIN_INTERVAL = 0.1


def _save_checkpoint(graph: DominantGraph, path: str, seq: int) -> str:
    """Write a checkpoint in the format its extension names."""
    if path.endswith(".npz"):
        return save_graph(graph, path, durable=True)
    return save_graph_store(graph, path, applied_seq=seq, durable=True)


def _load_checkpoint(path: str) -> DominantGraph:
    """Load a checkpoint in whichever format ``CURRENT`` names.

    ``.dgs`` store checkpoints and legacy ``.npz`` archives both come
    back as the same validated :class:`DominantGraph`; corruption in
    either raises a typed :class:`~repro.errors.IndexCorruptionError`.
    """
    if path.endswith(".dgs"):
        return load_graph_store(path)
    return load_graph(path)


# ----------------------------------------------------------------------
# Operation log vocabulary
# ----------------------------------------------------------------------
def apply_op(graph: DominantGraph, op: dict) -> None:
    """Apply one logged operation to a graph (recovery replay).

    Replay calls the same Section V maintenance code the live writer
    used, so a recovered index is *constructed by* the operations, not
    approximated from them — the crash-recovery tests then hold it
    bit-identical to a from-scratch rebuild.
    """
    kind = op.get("op")
    if kind == "insert":
        insert_record(graph, int(op["rid"]))
    elif kind == "delete":
        delete_record(graph, int(op["rid"]))
    elif kind == "mark_deleted":
        mark_deleted(graph, int(op["rid"]))
    elif kind == "insert_many":
        for rid in validate_insert_batch(graph, op["rids"]):
            insert_record(graph, rid)
    elif kind == "delete_many":
        for rid in validate_delete_batch(graph, op["rids"]):
            delete_record(graph, rid)
    else:
        raise ValueError(f"unknown WAL operation {kind!r}")


# ----------------------------------------------------------------------
# CURRENT pointer file
# ----------------------------------------------------------------------
def _write_current(directory: str, checkpoint: str, applied_seq: int) -> None:
    """Atomically (and durably) point ``CURRENT`` at a checkpoint."""
    path = os.path.join(directory, CURRENT_NAME)
    tmp = f"{path}.tmp.{os.getpid()}"
    body = json.dumps(
        {"checkpoint": checkpoint, "applied_seq": int(applied_seq)},
        sort_keys=True,
    ).encode()
    try:
        with open(tmp, "wb") as handle:
            handle.write(body + b"\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        fsync_directory(directory)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)


def _read_current(directory: str) -> tuple:
    """``(checkpoint_name, applied_seq)`` from the pointer file."""
    path = os.path.join(directory, CURRENT_NAME)
    try:
        with open(path, "rb") as handle:
            meta = json.loads(handle.read().decode())
        checkpoint = str(meta["checkpoint"])
        applied_seq = int(meta["applied_seq"])
    except FileNotFoundError:
        raise
    except (OSError, ValueError, KeyError, TypeError) as exc:
        raise IndexCorruptionError(
            f"unreadable CURRENT pointer: {exc}", path=path
        ) from exc
    if os.path.sep in checkpoint or checkpoint in ("", ".", ".."):
        raise IndexCorruptionError(
            f"CURRENT names an invalid checkpoint {checkpoint!r}", path=path
        )
    return checkpoint, applied_seq


# ----------------------------------------------------------------------
# Snapshots
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ServingSnapshot:
    """One immutable published version of the index.

    Attributes
    ----------
    compiled:
        Detached :class:`~repro.core.compiled.CompiledDG` — the *base*;
        safe for any number of concurrent readers, forever.
    epoch:
        Monotone publish counter (one bump per completed maintenance
        batch).  A query's :attr:`~repro.core.result.TopKResult.epoch`
        names the snapshot that answered it.  A background compaction
        republishes under the *same* epoch: the folded snapshot answers
        bit-identically, so the epoch's oracle is unchanged.
    seq:
        WAL sequence of the last operation this snapshot includes.
    overlay:
        Everything applied since ``compiled`` was built
        (:class:`~repro.core.overlay.DeltaOverlay`), or ``None`` when
        the base alone is current.  Immutable like the base.
    """

    compiled: CompiledDG
    epoch: int
    seq: int
    overlay: DeltaOverlay | None = field(default=None)

    def alive_ids(self) -> np.ndarray:
        """Sorted ids of every answerable record in this snapshot.

        Overlay-aware: the base's real-record list alone over-reports
        deletions in flight and misses fresh inserts.
        """
        return alive_record_ids(self.compiled, self.overlay)


def snapshot_scan(
    compiled: CompiledDG,
    function: ScoringFunction,
    k: int,
    where: WherePredicate | None = None,
    stats: AccessCounter | None = None,
    overlay: DeltaOverlay | None = None,
) -> TopKResult:
    """Full scan of a snapshot's real records: the serve-side oracle tier.

    The guard's naive tier scans the *mutable* graph, which concurrent
    maintenance makes unsafe here; this scan reads only the snapshot's
    immutable arrays, so a degraded answer is still epoch-consistent.
    Same answer contract as every other engine: non-increasing scores,
    ties broken by ascending record id, pseudo records never reported.

    With ``overlay`` given the scan covers the same record set the
    overlay query path serves: base rows minus the overlay's deletions,
    plus the overlay's fresh records — still one exhaustive
    ``score_many`` pass, still the oracle for that snapshot.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    stats = stats if stats is not None else _fresh_stats()
    answerable = ~compiled.pseudo_mask
    if overlay is not None:
        deleted = overlay.deleted_mask(compiled.num_records)
        if deleted is not None:
            answerable = answerable & ~deleted
    ids = compiled.record_ids[answerable]
    values = compiled.values[answerable]
    if overlay is not None and overlay.delta_count:
        ids = np.concatenate([ids, overlay.delta_ids])
        # A fresh owning copy either way: scoring functions and ``where``
        # are entitled to writable inputs, and the overlay stays frozen.
        values = np.concatenate([values, overlay.delta_values])
    if ids.size == 0:
        return TopKResult((), (), stats, algorithm="snapshot-scan")
    scores = function.score_many(values)
    stats.count_computed_batch(ids)
    if where is not None:
        keep = np.fromiter(
            (bool(where(values[i])) for i in range(values.shape[0])),
            dtype=bool,
            count=values.shape[0],
        )
        ids, scores = ids[keep], scores[keep]
    order = np.lexsort((ids, -scores))[:k]
    return TopKResult(
        ids=tuple(int(i) for i in ids[order]),
        scores=tuple(float(s) for s in scores[order]),
        stats=stats,
        algorithm="snapshot-scan",
    )


def _fresh_stats():
    from repro.metrics.counters import AccessCounter

    return AccessCounter()


class _BreakerSkip(Exception):
    """Internal control flow: a tier was skipped by its open breaker.

    Raised into the degradation handler so a breaker-rejected tier and
    a failed tier take the same fallback path; never escapes the index.
    """


# ----------------------------------------------------------------------
# The serving index
# ----------------------------------------------------------------------
class ServingIndex:
    """WAL-backed, snapshot-isolated, crash-recoverable index server.

    Construct with :meth:`create` (new directory) or :meth:`open`
    (recover an existing one); both accept the same keyword knobs.

    Parameters
    ----------
    fsync:
        WAL durability policy (see :mod:`repro.serve.wal`).
    checkpoint_interval:
        Auto-checkpoint after this many mutations (``None`` = only on
        :meth:`checkpoint`/:meth:`close`).
    max_concurrent / max_waiting / wait_timeout:
        Admission bounds (see :class:`~repro.serve.admission.AdmissionController`).
    query_retries:
        Extra attempts for a transiently failing snapshot traversal
        before degrading to the snapshot scan.
    cache_size:
        Capacity of the epoch-keyed LRU result cache
        (:mod:`repro.serve.cache`); ``None`` or ``0`` disables caching.
        Entries are keyed by ``(epoch, weights, k)``, so a publish
        invalidates them all implicitly.
    workers:
        When positive, attach a :class:`~repro.parallel.executor.ParallelQueryExecutor`
        of this many processes over a shared-memory copy of each
        published snapshot; :meth:`query_batch` then fans out to it, and
        every writer publish republishes the shared segment.
    worker_batch_size:
        Queries per fabric sub-batch (see
        :func:`~repro.core.compiled.batch_top_k` for the memory bound).
    timeout_policy:
        The stack's wall-clock knobs
        (:class:`~repro.resilience.policy.TimeoutPolicy`): the default
        end-to-end request deadline, the fabric's hung-worker reply
        timeout, and the hedge fraction.  The default grants no
        deadline (unbounded requests, the pre-resilience behaviour) and
        a 2-second reply timeout on the fabric.
    retry_policy:
        Deadline-aware retry for transiently failing snapshot
        traversals (:class:`~repro.resilience.policy.RetryPolicy`);
        overrides ``query_retries``/``retry_base_delay`` when given.
    overlay_limit:
        Cap on the delta overlay's size (inserts + deletions) before a
        publish folds it with a synchronous full recompile.  ``0`` or
        ``None`` disables the overlay entirely — every publish then
        recompiles, the pre-overlay behaviour.  The cap bounds the read
        path's extra work (one exhaustive scan of at most this many
        delta records per query), which is what keeps read p99 within
        budget while writes stream.
    compact_interval:
        When set (> 0, seconds), start a background
        :class:`~repro.serve.compactor.Compactor` that folds the
        overlay into a fresh base once it reaches half of
        ``overlay_limit`` or turns ``compact_age`` seconds old —
        without consuming an epoch, since the folded snapshot answers
        bit-identically.  ``None`` (default) leaves folding to the
        synchronous overflow path and explicit :meth:`compact` calls,
        which keeps single-threaded tests deterministic.
    compact_age:
        Age threshold (seconds since the overlay's oldest change) for
        the background compactor; ``None`` disables age-based folding.

    Examples
    --------
    >>> import tempfile
    >>> from repro.core.dataset import Dataset
    >>> directory = tempfile.mkdtemp()
    >>> from repro.core.functions import LinearFunction
    >>> with ServingIndex.create(directory, Dataset([[2.0, 1.0], [1.0, 2.0], [0.2, 0.2]])) as idx:
    ...     idx.query(LinearFunction([0.5, 0.5]), k=1).ids
    (0,)
    """

    def __init__(
        self,
        directory: str,
        graph: DominantGraph,
        wal: WriteAheadLog,
        *,
        fsync: str = "always",
        checkpoint_interval: int | None = 256,
        max_concurrent: int = 8,
        max_waiting: int = 16,
        wait_timeout: float | None = 5.0,
        query_retries: int = 1,
        retry_base_delay: float = 0.005,
        cache_size: int | None = 256,
        workers: int = 0,
        worker_batch_size: int = 64,
        timeout_policy: TimeoutPolicy | None = None,
        retry_policy: RetryPolicy | None = None,
        scrub_interval: float | None = None,
        overlay_limit: int | None = 128,
        compact_interval: float | None = None,
        compact_age: float | None = 2.0,
    ) -> None:
        self._directory = directory
        self._graph = graph
        self._wal = wal
        self._fsync = fsync
        self._checkpoint_interval = checkpoint_interval
        self._scrub_interval = scrub_interval
        self._scrubber: StoreScrubber | None = None
        self._scrub_store: MappedStore | None = None
        self._store_recoveries = 0
        self._publish_stats = {"count": 0, "last_ms": 0.0, "total_ms": 0.0}
        self._publish_samples: deque[float] = deque(
            maxlen=_PUBLISH_SAMPLE_WINDOW
        )
        self._checkpoint_stats = {"count": 0, "last_ms": 0.0, "total_ms": 0.0}
        self._overlay_limit = int(overlay_limit or 0)
        self._compact_age = compact_age
        self._overlay_builder: OverlayBuilder | None = None
        self._base_generation = 0
        self._overlay_publishes = 0
        self._overlay_fallbacks = 0
        self._sidecar_enabled = self._overlay_limit > 0
        self._last_sidecar_spool: float | None = None
        self._compaction_stats = {
            "count": 0,
            "failed": 0,
            "forced": 0,
            "last_ms": 0.0,
            "total_ms": 0.0,
        }
        self._compactor: Compactor | None = None
        self._timeouts = (
            TimeoutPolicy() if timeout_policy is None else timeout_policy
        )
        self._retry = (
            RetryPolicy(
                attempts=query_retries + 1, base_delay=retry_base_delay
            )
            if retry_policy is None
            else retry_policy
        )
        self._breakers = BreakerBoard(window=8, min_calls=3, cooldown=0.5)
        self._admission = AdmissionController(
            max_concurrent=max_concurrent,
            max_waiting=max_waiting,
            wait_timeout=wait_timeout,
        )
        self._writer_lock = threading.RLock()
        self._epoch = 0
        self._ops_since_checkpoint = 0
        self._draining = False
        self._closed = False
        self._poisoned: Exception | None = None
        self._snapshot = ServingSnapshot(
            compiled=graph.compile().detach(), epoch=0, seq=wal.last_seq
        )
        if self._overlay_limit > 0:
            self._overlay_builder = OverlayBuilder(self._snapshot.compiled)
        # Recovery is an implicit compaction: the WAL was replayed into
        # the graph and compiled from scratch, so any overlay sidecar on
        # disk describes a base that no longer exists.
        self._remove_delta_sidecar()
        self._cache = ResultCache(cache_size) if cache_size else None
        self._fabric: ParallelQueryExecutor | None = None
        if workers > 0:
            # Snapshots reach the workers as mapped store files in the
            # spool: one physical copy for N processes (page cache), and
            # fast verification on every attach.
            self._fabric = ParallelQueryExecutor(
                self._snapshot.compiled,
                workers=workers,
                batch_size=worker_batch_size,
                epoch=self._snapshot.epoch,
                reply_timeout=self._timeouts.reply_timeout,
                hedge_fraction=self._timeouts.hedge_fraction,
                snapshot_dir=os.path.join(directory, SNAPSHOT_SPOOL),
            )
        if scrub_interval is not None and scrub_interval > 0:
            self._scrubber = StoreScrubber(
                None,  # armed below, once a .dgs checkpoint exists
                interval=scrub_interval,
                breaker=self._breakers.get("store"),
                on_corruption=self._on_store_corruption,
            )
            self._rearm_scrubber()
            self._scrubber.start()
        if (
            self._overlay_limit > 0
            and compact_interval is not None
            and compact_interval > 0
        ):
            self._compactor = Compactor(
                self._compaction_due,
                self._timed_compact,
                interval=compact_interval,
                breaker=self._breakers.get("compactor"),
            )
            self._compactor.start()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls, directory: str, source: DominantGraph | Dataset, **kwargs: Any
    ) -> "ServingIndex":
        """Initialize a fresh serving directory and return the live index.

        ``source`` is a prebuilt (possibly Extended)
        :class:`~repro.core.graph.DominantGraph` or a
        :class:`~repro.core.dataset.Dataset` (indexed with the plain
        builder).  Refuses to clobber an existing serving directory.
        """
        if isinstance(source, DominantGraph):
            graph = source
        elif isinstance(source, Dataset):
            graph = build_dominant_graph(source)
        else:
            raise TypeError(
                "source must be a DominantGraph or Dataset, "
                f"got {type(source).__name__}"
            )
        os.makedirs(directory, exist_ok=True)
        if os.path.exists(os.path.join(directory, CURRENT_NAME)):
            raise FileExistsError(
                f"{directory!r} already holds a serving index; "
                "use ServingIndex.open to recover it"
            )
        name = _CHECKPOINT_FMT.format(seq=0)
        _save_checkpoint(graph, os.path.join(directory, name), 0)
        _write_current(directory, name, 0)
        wal_path = os.path.join(directory, WAL_NAME)
        create_wal(wal_path, base_seq=0)
        wal = WriteAheadLog(wal_path, fsync=kwargs.get("fsync", "always"))
        return cls(directory, graph, wal, **kwargs)

    @classmethod
    def open(cls, directory: str, **kwargs: Any) -> "ServingIndex":
        """Recover a serving directory: checkpoint + WAL replay.

        Tolerates every crash window of the write path: a torn WAL tail
        is dropped (with a :class:`~repro.errors.DegradedResultWarning`
        naming the bytes lost), an orphan checkpoint from an interrupted
        checkpoint swap is garbage-collected, and a WAL that predates
        the checkpoint is replayed only past the checkpoint's sequence
        watermark.  Real corruption — mid-log damage, a WAL from the
        future, a replay that no longer applies — raises typed errors
        rather than guessing.
        """
        checkpoint, applied_seq = _read_current(directory)
        checkpoint_path = os.path.join(directory, checkpoint)
        try:
            graph = _load_checkpoint(checkpoint_path)
        except StoreCorruptionError:
            # Quarantine-not-serve: keep the evidence, surface the typed
            # error.  Rebuild with `repro serve --init` (or restore the
            # file) — a damaged checkpoint must never be guessed around.
            _quarantine_file(directory, checkpoint_path)
            raise

        wal_path = os.path.join(directory, WAL_NAME)
        if not os.path.exists(wal_path):
            warnings.warn(
                DegradedResultWarning(
                    f"write-ahead log missing from {directory!r}; serving "
                    "from the checkpoint alone (operations after it, if "
                    "any, are lost)"
                ),
                stacklevel=2,
            )
            create_wal(wal_path, base_seq=applied_seq)
        scan = scan_wal(wal_path)
        if scan.base_seq > applied_seq:
            raise IndexCorruptionError(
                f"WAL starts at sequence {scan.base_seq} but the "
                f"checkpoint only covers up to {applied_seq}: operations "
                "are missing between them",
                path=wal_path,
            )
        if scan.torn_bytes:
            warnings.warn(
                DegradedResultWarning(
                    f"dropped {scan.torn_bytes} bytes of torn WAL tail "
                    "(an operation interrupted by a crash before it was "
                    "acknowledged)"
                ),
                stacklevel=2,
            )
        for seq, op in scan.records:
            if seq <= applied_seq:
                continue  # already inside the checkpoint
            try:
                apply_op(graph, op)
            except (KeyError, ValueError, IndexError) as exc:
                raise WALCorruptionError(
                    f"record {seq} ({op.get('op')!r}) no longer applies to "
                    f"the checkpointed index: {exc}",
                    path=wal_path,
                ) from exc

        _collect_orphan_checkpoints(directory, keep=checkpoint)
        wal = WriteAheadLog(wal_path, fsync=kwargs.get("fsync", "always"))
        return cls(directory, graph, wal, **kwargs)

    def close(
        self, *, drain_timeout: float | None = 10.0, checkpoint: bool = True
    ) -> bool:
        """Drain in-flight queries, checkpoint, release the WAL.

        New queries and mutations are refused the moment draining
        starts; queries already admitted run to completion (bounded by
        ``drain_timeout``).  Returns ``True`` when the drain completed
        before the timeout.  Idempotent.
        """
        with self._writer_lock:
            if self._closed:
                return True
            self._draining = True
        drained = self._admission.drain(timeout=drain_timeout)
        # Stop the scrubber and compactor outside the writer lock: their
        # callbacks take that lock, and stopping must not deadlock with
        # a recovery or fold already in flight.
        if self._scrubber is not None:
            self._scrubber.stop()
        if self._compactor is not None:
            self._compactor.stop()
        with self._writer_lock:
            if checkpoint and self._poisoned is None:
                self._checkpoint_locked()
            self._wal.close()
            if self._fabric is not None:
                self._fabric.shutdown()
            if self._scrub_store is not None:
                self._scrub_store.close()
                self._scrub_store = None
            self._closed = True
        return drained

    def __enter__(self) -> "ServingIndex":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def snapshot(self) -> ServingSnapshot:
        """The currently published snapshot (one atomic reference read)."""
        return self._snapshot

    @property
    def epoch(self) -> int:
        """Epoch of the currently published snapshot."""
        return self._snapshot.epoch

    def query(
        self,
        function: ScoringFunction,
        k: int,
        *,
        where: WherePredicate | None = None,
        budget_ms: float | None = None,
        budget_records: int | None = None,
        admission_timeout: float | None = None,
        fallback: bool = True,
        deadline_ms: float | None = None,
    ) -> TopKResult:
        """Answer a top-k query from the current snapshot.

        The snapshot is pinned once, after admission; everything the
        query touches — traversal, retries, the degraded scan — reads
        that one immutable version, so the result is tagged with its
        epoch and can never mix two index states.  Budgets behave as in
        :func:`repro.core.guard.run_query` (shared deadline, no
        degradation around a budget violation).  Transient traversal
        faults are retried with backoff, then degraded to
        :func:`snapshot_scan` under a :class:`DegradedResultWarning`
        unless ``fallback=False``.

        ``deadline_ms`` grants the request an end-to-end deadline
        (default: the index's
        :attr:`~repro.resilience.policy.TimeoutPolicy.default_deadline_ms`).
        The same :class:`~repro.resilience.Deadline` clamps the
        admission wait, checkpoints the kernel's chunk loop, bounds the
        retry backoff, and covers the degraded scan — expiry anywhere
        raises :class:`~repro.errors.DeadlineExceeded`, never a silent
        overrun.  A compiled tier whose circuit breaker is open is
        skipped straight to the scan tier.

        Raises
        ------
        ServiceUnavailable
            Draining or closed (also its ``ServiceOverloaded`` subclass
            when admission sheds the request).
        QueryBudgetExceeded
            A budget or deadline tripped; never retried, never degraded
            around.
        """
        if self._draining or self._closed:
            raise ServiceUnavailable(
                "draining" if not self._closed else "closed"
            )
        deadline = self._timeouts.deadline_for(deadline_ms)
        with self._admission.admit(timeout=admission_timeout, deadline=deadline):
            snap = self._snapshot
            key: CacheKey | None = None
            if (
                self._cache is not None
                and where is None
                and budget_ms is None
                and budget_records is None
            ):
                key = cache_key(function, k, snap.epoch)
                cached = self._cache.get(key)
                if cached is not None:
                    return cached
            started = time.monotonic()
            compiled_breaker = self._breakers.get("tier:compiled")

            def attempt() -> TopKResult:
                stats = BudgetedAccessCounter(
                    max_records=budget_records,
                    budget_ms=budget_ms,
                    started=started,
                    deadline=deadline,
                )
                if snap.overlay is not None:
                    result = overlay_top_k(
                        snap.compiled, snap.overlay, function, k,
                        where=where, stats=stats, deadline=deadline,
                    )
                else:
                    result = snap.compiled.top_k(
                        function, k, where=where, stats=stats,
                        deadline=deadline,
                    )
                stats.enforce()
                return result

            try:
                if fallback and not compiled_breaker.allow():
                    raise _BreakerSkip(
                        f"compiled tier breaker is {compiled_breaker.state}"
                    )
                tier_started = time.monotonic()
                result = self._retry.run(attempt, deadline=deadline)
                compiled_breaker.record_success(
                    1000.0 * (time.monotonic() - tier_started)
                )
                tier = "compiled"
            except QueryBudgetExceeded as exc:
                # Budget and deadline expiries are the request's verdict,
                # not the tier's failure: no breaker charge, no fallback
                # (every lower tier only spends more of what ran out).
                exc.tier = exc.tier or "compiled"
                raise
            except Exception as exc:  # repro: noqa[typed-errors] -- degrading to the snapshot scan must absorb whatever the compiled tier throws
                if not isinstance(exc, _BreakerSkip):
                    compiled_breaker.record_failure()
                if not fallback:
                    raise
                warnings.warn(
                    DegradedResultWarning(
                        f"snapshot traversal failed after retries "
                        f"({type(exc).__name__}: {exc}); degrading to the "
                        "snapshot scan"
                    ),
                    stacklevel=2,
                )
                stats = BudgetedAccessCounter(
                    max_records=budget_records,
                    budget_ms=budget_ms,
                    started=started,
                    deadline=deadline,
                )
                try:
                    result = snapshot_scan(
                        snap.compiled, function, k, where=where,
                        stats=stats, overlay=snap.overlay,
                    )
                    stats.enforce()
                except QueryBudgetExceeded as budget_exc:
                    budget_exc.tier = budget_exc.tier or "naive"
                    raise
                tier = "naive"
            final = replace(result, tier=tier, epoch=snap.epoch)
            if key is not None and tier == "compiled" and self._cache is not None:
                # Degraded answers are exact too, but caching them would
                # keep reporting tier="naive" after the engine healed.
                self._cache.put(key, final)
            return final

    def query_batch(
        self,
        functions: Iterable[ScoringFunction],
        k: int,
        *,
        where: WherePredicate | None = None,
        mode: str = "auto",
        admission_timeout: float | None = None,
        deadline_ms: float | None = None,
    ) -> list[TopKResult]:
        """Answer many top-k queries in one admission slot.

        With ``workers`` configured the batch fans out to the shared
        -memory fabric (``mode`` as in
        :meth:`~repro.parallel.executor.ParallelQueryExecutor.map_queries`);
        otherwise it runs the in-process
        :func:`~repro.core.compiled.batch_top_k` sweep.  Either way each
        result is bit-identical to :meth:`query` for the same function
        and carries the epoch of the snapshot that answered it.  Cached
        answers (epoch-keyed, linear functions, no ``where``) are reused
        per query; only the misses are computed.

        Degradation ladder: a fabric infrastructure failure (or an open
        ``fabric`` circuit breaker) falls back to the in-process
        compiled sweep, which in turn falls back to the per-query
        :func:`snapshot_scan` — every rung answers from the same pinned
        snapshot, so even a twice-degraded batch is epoch-consistent
        and bit-identical.  A :class:`~repro.errors.DeadlineExceeded`
        never falls through the ladder: when the request's time ran
        out, a slower rung cannot help, so the typed error propagates.

        ``deadline_ms`` grants the end-to-end deadline (default: the
        index's timeout policy); it clamps the admission wait, rides
        into the fabric workers, and checkpoints the in-process kernel.

        Budgets are not supported on the batch path — issue budgeted
        queries individually through :meth:`query`.
        """
        if self._draining or self._closed:
            raise ServiceUnavailable(
                "draining" if not self._closed else "closed"
            )
        requested = list(functions)
        if not requested:
            return []
        deadline = self._timeouts.deadline_for(deadline_ms)
        with self._admission.admit(timeout=admission_timeout, deadline=deadline):
            snap = self._snapshot
            results: list[TopKResult | None] = [None] * len(requested)
            keys: list[CacheKey | None] = [None] * len(requested)
            if self._cache is not None and where is None:
                for index, function in enumerate(requested):
                    keys[index] = cache_key(function, k, snap.epoch)
                    cached = self._cache.get(keys[index])
                    if cached is not None:
                        results[index] = cached
            misses = [i for i, result in enumerate(results) if result is None]
            if misses:
                miss_functions = [requested[i] for i in misses]
                computed = self._compute_batch(
                    snap, miss_functions, k, where, mode, deadline
                )
                for index, result in zip(misses, computed):
                    results[index] = result
                    if (
                        self._cache is not None
                        and keys[index] is not None
                        # Scan-tier answers are exact but would keep
                        # reporting tier="naive" after the engine healed.
                        and result.tier == "compiled"
                        # A publish can race the fan-out; never file a
                        # result under an epoch it was not computed from.
                        and result.epoch == snap.epoch
                    ):
                        self._cache.put(keys[index], result)
            return [result for result in results if result is not None]

    def _compute_batch(
        self,
        snap: ServingSnapshot,
        miss_functions: list[ScoringFunction],
        k: int,
        where: WherePredicate | None,
        mode: str,
        deadline: Deadline | None,
    ) -> list[TopKResult]:
        """Run batch misses down the ladder: fabric → in-process → scan.

        The fabric rung only serves overlay-free snapshots: workers hold
        the shared-memory *base*, which is republished at compaction, so
        while a delta overlay is live the batch runs the in-process
        merge instead (still exact, still epoch-consistent).
        """
        fabric_breaker = self._breakers.get("fabric")
        if (
            self._fabric is not None
            and snap.overlay is None
            and fabric_breaker.allow()
        ):
            fabric_started = time.monotonic()
            try:
                computed = [
                    replace(result, tier="compiled")
                    for result in self._fabric.map_queries(
                        miss_functions, k, where=where, mode=mode,
                        deadline=deadline,
                    )
                ]
            except DeadlineExceeded:
                # The request's time is gone; no rung below is faster.
                raise
            except Exception as exc:  # repro: noqa[typed-errors] -- any fabric infrastructure fault must degrade to the in-process rung, not fail the batch
                fabric_breaker.record_failure()
                warnings.warn(
                    DegradedResultWarning(
                        f"fabric batch failed ({type(exc).__name__}: "
                        f"{exc}); degrading to the in-process compiled "
                        "sweep"
                    ),
                    stacklevel=3,
                )
            else:
                fabric_breaker.record_success(
                    1000.0 * (time.monotonic() - fabric_started)
                )
                return computed
        elif self._fabric is not None and snap.overlay is None:
            warnings.warn(
                DegradedResultWarning(
                    f"fabric skipped: its circuit breaker is "
                    f"{fabric_breaker.state}; using the in-process "
                    "compiled sweep"
                ),
                stacklevel=3,
            )
        try:
            if snap.overlay is not None:
                swept = overlay_batch_top_k(
                    snap.compiled, snap.overlay, miss_functions, k,
                    where=where, deadline=deadline,
                )
            else:
                swept = batch_top_k(
                    snap.compiled, miss_functions, k, where=where,
                    deadline=deadline,
                )
            return [
                replace(result, tier="compiled", epoch=snap.epoch)
                for result in swept
            ]
        except QueryBudgetExceeded:
            raise
        except Exception as exc:  # repro: noqa[typed-errors] -- the last automatic rung before the scan oracle must absorb arbitrary kernel faults
            warnings.warn(
                DegradedResultWarning(
                    f"in-process batch failed ({type(exc).__name__}: "
                    f"{exc}); degrading to the snapshot scan"
                ),
                stacklevel=3,
            )
            computed = []
            for function in miss_functions:
                if deadline is not None:
                    deadline.check(stage="scan", tier="naive")
                stats = BudgetedAccessCounter(deadline=deadline)
                result = snapshot_scan(
                    snap.compiled, function, k, where=where, stats=stats,
                    overlay=snap.overlay,
                )
                computed.append(
                    replace(result, tier="naive", epoch=snap.epoch)
                )
            return computed

    # ------------------------------------------------------------------
    # Writes (single-writer, validated, logged, published)
    # ------------------------------------------------------------------
    def insert(self, record_id: int) -> int:
        """Durably index one dataset row; returns its layer."""
        rid = int(record_id)
        return self._mutate(
            {"op": "insert", "rid": rid},
            validate=lambda: validate_insert_batch(self._graph, [rid]),
            apply=lambda: insert_record(self._graph, rid),
        )

    def delete(self, record_id: int) -> None:
        """Durably remove one record (paper Algorithm 5)."""
        rid = int(record_id)
        return self._mutate(
            {"op": "delete", "rid": rid},
            validate=lambda: validate_delete_batch(self._graph, [rid]),
            apply=lambda: delete_record(self._graph, rid),
        )

    def mark_deleted(self, record_id: int) -> None:
        """Durably apply the paper's cheap §V-B mark-as-deleted."""
        rid = int(record_id)
        return self._mutate(
            {"op": "mark_deleted", "rid": rid},
            validate=lambda: validate_delete_batch(self._graph, [rid]),
            apply=lambda: mark_deleted(self._graph, rid),
        )

    def insert_many(self, record_ids: Iterable[int]) -> list[int]:
        """Durably index a batch; one WAL record, one snapshot publish.

        Readers see the whole batch or none of it — the snapshot is
        published once, after the last insert — and recovery replays it
        with the same all-or-nothing contract.
        """
        rids = [int(r) for r in record_ids]
        if not rids:
            return []
        return self._mutate(
            {"op": "insert_many", "rids": rids},
            validate=lambda: validate_insert_batch(self._graph, rids),
            apply=lambda: [insert_record(self._graph, r) for r in rids],
        )

    def delete_many(self, record_ids: Iterable[int]) -> None:
        """Durably remove a batch; one WAL record, one snapshot publish."""
        rids = [int(r) for r in record_ids]
        if not rids:
            return None
        return self._mutate(
            {"op": "delete_many", "rids": rids},
            validate=lambda: validate_delete_batch(self._graph, rids),
            apply=lambda: [delete_record(self._graph, r) for r in rids],
        )

    def _mutate(self, op: dict, *, validate, apply):
        with self._writer_lock:
            self._require_writable()
            validate()  # raises before anything is touched
            try:
                result = apply()
            except Exception as exc:  # repro: noqa[typed-errors] -- any mid-apply failure, whatever its type, must poison the writer
                # Validation passed yet apply failed: the in-memory graph
                # may be half-mutated.  Nothing was logged or published,
                # so durable state and readers are both still consistent;
                # the writer refuses further work until a restart
                # recovers from checkpoint + WAL.
                self._poisoned = exc
                raise
            try:
                self._wal.append(op)
            except Exception as exc:  # repro: noqa[typed-errors] -- a failed WAL append of any kind leaves durability unknown; the writer must poison
                self._poisoned = exc
                raise
            self._publish_locked(op)
            self._ops_since_checkpoint += 1
            if (
                self._checkpoint_interval
                and self._ops_since_checkpoint >= self._checkpoint_interval
            ):
                self._checkpoint_locked()
            return result

    def _publish_locked(self, op: dict | None = None) -> ServingSnapshot:
        """Publish the mutation just applied, preferring the O(changes) path.

        With the overlay enabled and ``op`` describable as a delta, the
        new snapshot reuses the current base and carries a freshly
        frozen overlay — no compile, no fabric republish (batch reads
        skip the fabric while an overlay is live).  Overlay overflow,
        overlay-application failure, or a disabled overlay all fall
        back to the full recompile under the same (new) epoch — the
        degradation is in publish *cost*, never in answers.
        """
        publish_started = time.monotonic()
        self._epoch += 1
        snap: ServingSnapshot | None = None
        builder = self._overlay_builder
        if op is not None and builder is not None:
            try:
                self._apply_overlay_op(builder, op)
            except Exception as exc:  # repro: noqa[typed-errors] -- an overlay that cannot express the op must degrade to a recompile, whatever went wrong
                self._overlay_fallbacks += 1
                self._overlay_builder = None  # rebuilt against the new base
                warnings.warn(
                    DegradedResultWarning(
                        f"overlay application failed "
                        f"({type(exc).__name__}: {exc}); publishing via "
                        "full recompile"
                    ),
                    stacklevel=3,
                )
            else:
                if builder.size <= self._overlay_limit:
                    snap = ServingSnapshot(
                        compiled=self._snapshot.compiled,
                        epoch=self._epoch,
                        seq=self._wal.last_seq,
                        overlay=builder.freeze(),
                    )
                    self._snapshot = snap  # atomic swap: the RCU publish
                    self._overlay_publishes += 1
                    self._spool_delta_sidecar(snap)
        if snap is None:
            snap = self._publish_base_locked(forced=op is not None)
        if self._cache is not None:
            # Old-epoch entries can never hit again (the epoch is part
            # of the key); purging just reclaims their memory early.
            self._cache.purge_other_epochs(snap.epoch)
        # Publish cost, kept separate from WAL append and checkpoint
        # cost so the write path's spend is attributable
        # (benchmarks/bench_serve.py reports it as its own column).
        elapsed_ms = 1000.0 * (time.monotonic() - publish_started)
        self._publish_stats["count"] += 1
        self._publish_stats["last_ms"] = elapsed_ms
        self._publish_stats["total_ms"] += elapsed_ms
        self._publish_samples.append(elapsed_ms)
        return snap

    def _publish_base_locked(self, *, forced: bool = False) -> ServingSnapshot:
        """Full-recompile publish: compile, swap, republish the fabric.

        The slow path — every pre-overlay publish looked like this.  It
        also *is* the synchronous compaction: the overlay (if any) has
        been folded into the graph all along, so compiling the graph
        yields the next base, and a fresh builder starts empty against
        it.  ``forced`` marks folds the overlay cap forced, for the
        health report's compaction ledger.
        """
        started = time.monotonic()
        snap = ServingSnapshot(
            compiled=self._graph.compile().detach(),
            epoch=self._epoch,
            seq=self._wal.last_seq,
        )
        self._snapshot = snap  # atomic reference swap: the RCU publish
        if self._overlay_limit > 0:
            self._overlay_builder = OverlayBuilder(snap.compiled)
            self._base_generation += 1
            self._remove_delta_sidecar()
        if self._fabric is not None:
            # Republish so fabric workers serve the new base (a store
            # file in the snapshot spool); per-worker FIFO ordering
            # makes this a barrier.
            self._fabric.publish(snap.compiled, epoch=snap.epoch)
        elapsed_ms = 1000.0 * (time.monotonic() - started)
        if self._overlay_limit > 0:
            self._compaction_stats["count"] += 1
            if forced:
                self._compaction_stats["forced"] += 1
            self._compaction_stats["last_ms"] = elapsed_ms
            self._compaction_stats["total_ms"] += elapsed_ms
        return snap

    def _apply_overlay_op(self, builder: OverlayBuilder, op: dict) -> None:
        """Mirror one WAL operation into the overlay builder.

        Called *after* the op applied cleanly to the graph, so an
        inserted record's exact float64 vector can be read back from
        the graph — the same bits a recompile would snapshot.  Raising
        here is safe: the caller degrades to a full-recompile publish.
        """
        kind = op.get("op")
        if kind == "insert":
            rid = int(op["rid"])
            builder.insert(rid, self._graph.vector(rid))
        elif kind in ("delete", "mark_deleted"):
            builder.delete(int(op["rid"]))
        elif kind == "insert_many":
            for rid in op["rids"]:
                builder.insert(int(rid), self._graph.vector(int(rid)))
        elif kind == "delete_many":
            for rid in op["rids"]:
                builder.delete(int(rid))
        else:
            raise ValueError(f"unknown WAL operation {kind!r}")

    def _require_writable(self) -> None:
        if self._closed:
            raise ServiceUnavailable("closed")
        if self._draining:
            raise ServiceUnavailable("draining")
        if self._poisoned is not None:
            raise ServiceUnavailable(
                "poisoned",
                f"a mutation failed mid-apply "
                f"({type(self._poisoned).__name__}: {self._poisoned}); "
                "restart to recover from checkpoint + WAL",
            )

    # ------------------------------------------------------------------
    # Compaction (folding the overlay into the next base)
    # ------------------------------------------------------------------
    def compact(self, *, lock_timeout: float | None = None) -> bool:
        """Fold the live overlay into a fresh compiled base, now.

        Publishes under the *unchanged* epoch: the folded snapshot
        answers every query bit-identically to the base+overlay
        snapshot it replaces, so epoch-keyed caches and oracles stay
        valid.  The fabric is republished here (not per mutation), so
        workers resume serving batches after the fold.  Returns ``True``
        when a fold published, ``False`` when there was nothing to fold,
        the writer is unavailable, or ``lock_timeout`` expired first —
        the clamp that keeps the background compactor from queueing
        unboundedly behind a write burst.
        """
        if lock_timeout is None:
            acquired = self._writer_lock.acquire()
        else:
            acquired = self._writer_lock.acquire(timeout=lock_timeout)
        if not acquired:
            return False
        try:
            if self._closed or self._poisoned is not None:
                return False
            snap = self._snapshot
            if snap.overlay is None or self._overlay_limit <= 0:
                return False
            started = time.monotonic()
            folded = ServingSnapshot(
                compiled=self._graph.compile().detach(),
                epoch=snap.epoch,  # content-identical: no epoch consumed
                seq=self._wal.last_seq,
            )
            self._snapshot = folded
            self._overlay_builder = OverlayBuilder(folded.compiled)
            self._base_generation += 1
            self._remove_delta_sidecar()
            if self._fabric is not None:
                self._fabric.publish(folded.compiled, epoch=folded.epoch)
            elapsed_ms = 1000.0 * (time.monotonic() - started)
            self._compaction_stats["count"] += 1
            self._compaction_stats["last_ms"] = elapsed_ms
            self._compaction_stats["total_ms"] += elapsed_ms
            return True
        except Exception:  # repro: noqa[typed-errors] -- a failed fold must degrade (overflow still recompiles), never break the writer
            self._compaction_stats["failed"] += 1
            raise
        finally:
            self._writer_lock.release()

    def _compaction_due(self) -> bool:
        """The background compactor's probe: size or age threshold hit."""
        snap = self._snapshot
        overlay = snap.overlay
        if overlay is None or self._closed or self._poisoned is not None:
            return False
        if 2 * overlay.size >= self._overlay_limit:
            return True
        return (
            self._compact_age is not None
            and overlay.created_at > 0.0
            and time.monotonic() - overlay.created_at >= self._compact_age
        )

    def _timed_compact(self, lock_timeout: float) -> bool:
        """The compactor thread's entry point: a fold clamped to a wait."""
        return self.compact(lock_timeout=lock_timeout)

    def _spool_delta_sidecar(self, snap: ServingSnapshot) -> None:
        """Best-effort ``kind="delta"`` sidecar for doctor and tooling.

        Derived data: the WAL is the durable truth and recovery never
        reads the sidecar, so a write failure only disables spooling
        (with one warning) — it must never poison the writer.

        Throttled: the atomic temp+rename costs a few hundred
        microseconds, which at a high write rate would dominate the
        O(changes) publish it rides on.  The first delta after a fold
        always spools (so a sidecar exists the moment an overlay does);
        after that, at most one spool per ``_SIDECAR_MIN_INTERVAL``.
        The ``applied_seq`` stamp keeps a throttled sidecar honest about
        exactly how fresh it is.
        """
        if not self._sidecar_enabled or snap.overlay is None:
            return
        now = time.monotonic()
        if (
            self._last_sidecar_spool is not None
            and now - self._last_sidecar_spool < _SIDECAR_MIN_INTERVAL
        ):
            return
        self._last_sidecar_spool = now
        try:
            save_delta_store(
                snap.overlay,
                os.path.join(self._directory, DELTA_SIDECAR),
                base_generation=self._base_generation,
                applied_seq=snap.seq,
                durable=False,
            )
        except Exception as exc:  # repro: noqa[typed-errors] -- sidecar spooling is advisory; any failure degrades to not spooling
            self._sidecar_enabled = False
            warnings.warn(
                DegradedResultWarning(
                    f"overlay sidecar write failed ({type(exc).__name__}: "
                    f"{exc}); disabling sidecar spooling"
                ),
                stacklevel=2,
            )

    def _remove_delta_sidecar(self) -> None:
        """Drop the sidecar after a fold (its overlay no longer exists)."""
        self._last_sidecar_spool = None  # next delta publish spools
        try:
            os.unlink(os.path.join(self._directory, DELTA_SIDECAR))
        except OSError:
            pass

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def checkpoint(self) -> str:
        """Write a durable checkpoint and atomically truncate the WAL.

        Returns the checkpoint file name now named by ``CURRENT``.
        """
        with self._writer_lock:
            if self._closed:
                raise ServiceUnavailable("closed")
            if self._poisoned is not None:
                self._require_writable()  # surfaces the poisoned detail
            return self._checkpoint_locked()

    def _checkpoint_locked(self, *, force: bool = False) -> str:
        started = time.monotonic()
        seq = self._wal.last_seq
        name = _CHECKPOINT_FMT.format(seq=seq)
        current, current_seq = _read_current(self._directory)
        if current == name and current_seq == seq and not force:
            return name  # nothing to checkpoint
        self._wal.sync()  # the log must be durable up to seq first
        _save_checkpoint(
            self._graph, os.path.join(self._directory, name), seq
        )
        _write_current(self._directory, name, seq)
        # The swap is the commit point; everything after is cleanup that
        # recovery tolerates losing.
        wal_path = os.path.join(self._directory, WAL_NAME)
        self._wal.close()
        create_wal(wal_path, base_seq=seq)
        self._wal = WriteAheadLog(wal_path, fsync=self._fsync)
        _collect_orphan_checkpoints(self._directory, keep=name)
        self._ops_since_checkpoint = 0
        elapsed_ms = 1000.0 * (time.monotonic() - started)
        self._checkpoint_stats["count"] += 1
        self._checkpoint_stats["last_ms"] = elapsed_ms
        self._checkpoint_stats["total_ms"] += elapsed_ms
        self._rearm_scrubber()
        return name

    # ------------------------------------------------------------------
    # Store scrubbing and recovery
    # ------------------------------------------------------------------
    def _rearm_scrubber(self) -> None:
        """Point the scrubber at the current ``.dgs`` checkpoint, if any.

        Called at startup and after every checkpoint rotation.  Legacy
        ``.npz`` checkpoints are not scrubbable (their integrity check
        is the load-time manifest); the scrubber idles until the next
        checkpoint converts the directory.
        """
        if self._scrubber is None:
            return
        try:
            current, _seq = _read_current(self._directory)
        except (FileNotFoundError, IndexCorruptionError):
            return
        if not current.endswith(".dgs"):
            return
        path = os.path.join(self._directory, current)
        try:
            fresh = open_store(path)
        except (FileNotFoundError, StoreCorruptionError):
            return
        previous = self._scrub_store
        self._scrub_store = fresh
        self._scrubber.replace(fresh)
        if previous is not None:
            previous.close()

    def _on_store_corruption(self, exc: StoreCorruptionError) -> None:
        """Scrubber detection handler: quarantine, then rebuild.

        This is the degradation ladder for durable state: the mapped
        checkpoint failed its re-checksum, so the damaged file is moved
        to ``quarantine/`` (preserved as evidence, unservable) and a
        fresh checkpoint is written from the healthy in-memory graph —
        recompile-from-source, no downtime, queries unaffected
        throughout because they never touch the checkpoint file.
        """
        with self._writer_lock:
            if self._closed or self._poisoned is not None:
                return
            warnings.warn(
                DegradedResultWarning(
                    f"checkpoint failed scrubbing ({exc}); quarantining "
                    "and rewriting from the in-memory index"
                ),
                stacklevel=2,
            )
            if self._scrub_store is not None:
                self._scrub_store.close()
                self._scrub_store = None
            if exc.path is not None:
                _quarantine_file(self._directory, exc.path)
            self._store_recoveries += 1
            # force: the WAL sequence has not moved, but the file on
            # disk is gone (quarantined) and must be rewritten.
            self._checkpoint_locked(force=True)

    # ------------------------------------------------------------------
    # Probes
    # ------------------------------------------------------------------
    def health(self) -> dict:
        """Liveness view: what the process is doing and how degraded.

        ``status`` is ``"ok"``, ``"degraded"`` (poisoned writer — reads
        still answer from the last good snapshot), or ``"closed"``.
        """
        snap = self._snapshot
        wal_path = os.path.join(self._directory, WAL_NAME)
        try:
            wal_bytes = os.path.getsize(wal_path)
        except OSError:
            wal_bytes = -1
        if self._closed:
            status = "closed"
        elif self._poisoned is not None:
            status = "degraded"
        else:
            status = "ok"
        overlay = snap.overlay
        records = snap.compiled.num_records
        if overlay is not None:
            records += overlay.delta_count - overlay.deleted_count
        publish = dict(self._publish_stats)
        if self._publish_samples:
            samples = sorted(self._publish_samples)
            publish["p50_ms"] = samples[len(samples) // 2]
            publish["p99_ms"] = samples[
                min(len(samples) - 1, (99 * len(samples)) // 100)
            ]
        return {
            "status": status,
            "directory": self._directory,
            "epoch": snap.epoch,
            "applied_seq": snap.seq,
            "records": records,
            "pseudo": snap.compiled.num_pseudo,
            "edges": snap.compiled.num_edges,
            "wal": {
                "path": wal_path,
                "bytes": wal_bytes,
                "fsync": self._fsync,
                "last_seq": self._wal.last_seq,
                "ops_since_checkpoint": self._ops_since_checkpoint,
            },
            "admission": self._admission.snapshot(),
            "breakers": self._breakers.snapshot(),
            "policies": {
                "default_deadline_ms": self._timeouts.default_deadline_ms,
                "reply_timeout": self._timeouts.reply_timeout,
                "hedge_fraction": self._timeouts.hedge_fraction,
                "retry_attempts": self._retry.attempts,
            },
            "cache": (
                self._cache.stats() if self._cache is not None else None
            ),
            "parallel": (
                self._fabric.stats() if self._fabric is not None else None
            ),
            "store": {
                "publish": publish,
                "checkpoint": dict(self._checkpoint_stats),
                "scrubber": (
                    self._scrubber.stats()
                    if self._scrubber is not None
                    else None
                ),
                "recoveries": self._store_recoveries,
            },
            "overlay": {
                "enabled": self._overlay_limit > 0,
                "delta_records": (
                    overlay.delta_count if overlay is not None else 0
                ),
                "deleted_rows": (
                    overlay.deleted_count if overlay is not None else 0
                ),
                "size": overlay.size if overlay is not None else 0,
                "limit": self._overlay_limit,
                "base_generation": self._base_generation,
                "delta_publishes": self._overlay_publishes,
                "fallbacks": self._overlay_fallbacks,
                "compactions": dict(self._compaction_stats),
                "compactor": (
                    self._compactor.stats()
                    if self._compactor is not None
                    else None
                ),
            },
            "draining": self._draining,
            "poisoned": self._poisoned is not None,
        }

    def readiness(self) -> dict:
        """Readiness view: ``{"ready": bool, "reasons": [...]}``.

        Ready means this process should receive traffic: not draining,
        not closed, writer healthy, snapshot published.
        """
        reasons = []
        if self._closed:
            reasons.append("closed")
        elif self._draining:
            reasons.append("draining")
        if self._poisoned is not None:
            reasons.append("writer poisoned; restart to recover")
        return {"ready": not reasons, "reasons": reasons}

    def __repr__(self) -> str:
        snap = self._snapshot
        return (
            f"ServingIndex(dir={self._directory!r}, epoch={snap.epoch}, "
            f"seq={snap.seq}, records={snap.compiled.num_records}, "
            f"fsync={self._fsync!r})"
        )


def _collect_orphan_checkpoints(directory: str, keep: str) -> None:
    """Delete checkpoint files other than the one ``CURRENT`` names.

    Covers both formats, so converting a directory from ``.npz`` to
    ``.dgs`` checkpoints garbage-collects the superseded archive.
    """
    for name in os.listdir(directory):
        if (
            name.startswith("checkpoint-")
            and (name.endswith(".npz") or name.endswith(".dgs"))
            and name != keep
        ):
            try:
                os.unlink(os.path.join(directory, name))
            except OSError:
                pass


def _quarantine_file(directory: str, path: str) -> "str | None":
    """Move a damaged file into ``<dir>/quarantine/``; returns new path.

    Evidence preservation: the file is renamed, never deleted, and the
    quarantine directory is outside every serving code path, so no later
    open can accidentally serve it.  Returns ``None`` when the file
    disappeared meanwhile.
    """
    if not os.path.exists(path):
        return None
    pen = os.path.join(directory, QUARANTINE_DIR)
    os.makedirs(pen, exist_ok=True)
    target = os.path.join(pen, os.path.basename(path))
    suffix = 0
    while os.path.exists(target):
        suffix += 1
        target = os.path.join(pen, f"{os.path.basename(path)}.{suffix}")
    os.replace(path, target)
    fsync_directory(directory)
    return target
