"""Background compaction: fold the delta overlay into the next base.

The O(changes) publish path (:mod:`repro.core.overlay`) defers the
O(n) ``graph.compile()`` until the overlay crosses a size or age
threshold.  Someone has to notice the threshold when writes go quiet —
a burst of inserts followed by silence would otherwise pin read cost at
"base sweep + overlay scan" forever.  :class:`Compactor` is that
someone: a daemon thread owned by the writer, shaped exactly like the
store scrubber (:class:`~repro.store.scrub.StoreScrubber`) — idempotent
start/stop, a public synchronous drive method for tests, a circuit
breaker recording outcomes, JSON-ready :meth:`stats`.

The thread never holds the decision and the fold apart: it calls the
owner's ``should_compact`` probe and, when it fires, the owner's
``compact`` callable with an explicit lock-acquisition ``timeout`` —
the compactor must *clamp* how long it may stall behind the writer lock
rather than queueing unboundedly behind a write burst (the
``overlay-discipline`` lint rule pins this).  A compaction failure is
recorded on the breaker and counted, never raised into the host: the
serving index independently degrades to a full-recompile publish when
the overlay overflows, so a broken compactor costs throughput, not
correctness.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional, Protocol


class _Breaker(Protocol):
    def record_success(self) -> None: ...

    def record_failure(self) -> None: ...


class Compactor:
    """Fold the overlay into a new base when thresholds say so.

    Parameters
    ----------
    should_compact:
        Cheap probe (no locks beyond the owner's own) answering "is the
        overlay past its size or age threshold?".
    compact:
        The fold itself; receives ``timeout`` — the longest the call may
        wait for the writer lock — and returns ``True`` when a
        compaction actually published, ``False`` when there was nothing
        to fold or the lock stayed busy.  Exceptions count as failures.
    interval:
        Seconds between probes.
    lock_timeout:
        The clamp passed to ``compact``.
    breaker:
        Optional circuit breaker recording fold outcomes.
    """

    def __init__(
        self,
        should_compact: Callable[[], bool],
        compact: Callable[[float], bool],
        *,
        interval: float = 0.05,
        lock_timeout: float = 1.0,
        breaker: "_Breaker | None" = None,
    ) -> None:
        self._should_compact = should_compact
        self._compact = compact
        self.interval = float(interval)
        self.lock_timeout = float(lock_timeout)
        self._breaker = breaker
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._compactions = 0
        self._failures = 0
        self._skipped = 0
        self._last_ms = 0.0
        self._total_ms = 0.0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "Compactor":
        """Start the daemon thread.  Idempotent."""
        with self._lock:
            if self._thread is not None and self._thread.is_alive():
                return self
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, name="overlay-compactor", daemon=True
            )
            self._thread.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        """Signal the thread to exit and join it.  Idempotent."""
        self._stop.set()
        thread = self._thread
        if thread is not None and thread.is_alive():
            thread.join(timeout)

    # ------------------------------------------------------------------
    # The compaction loop
    # ------------------------------------------------------------------
    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.compact_once()

    def compact_once(self) -> bool:
        """Probe and, if due, fold; returns whether a fold published.

        Public so tests (and ``repro doctor``) can drive a compaction
        synchronously instead of waiting out the interval.  Never
        raises: failures land on the breaker and in :meth:`stats`, and
        the owner's publish path degrades to full recompiles on its own.
        """
        try:
            if not self._should_compact():
                return False
        except Exception:  # repro: noqa[typed-errors] -- a failing probe must never crash the compactor thread; it just skips this tick
            with self._lock:
                self._failures += 1
            return False
        started = time.perf_counter()
        try:
            folded = self._compact(self.lock_timeout)
        except Exception:  # repro: noqa[typed-errors] -- fold failures land on the breaker; the owner degrades to full recompiles on its own
            with self._lock:
                self._failures += 1
            if self._breaker is not None:
                self._breaker.record_failure()
            return False
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        with self._lock:
            if folded:
                self._compactions += 1
                self._last_ms = elapsed_ms
                self._total_ms += elapsed_ms
            else:
                self._skipped += 1
        if folded and self._breaker is not None:
            self._breaker.record_success()
        return folded

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> "dict[str, object]":
        """JSON-ready counters for health probes and BENCH reports."""
        with self._lock:
            return {
                "running": bool(
                    self._thread is not None and self._thread.is_alive()
                ),
                "compactions": self._compactions,
                "failures": self._failures,
                "skipped": self._skipped,
                "last_ms": self._last_ms,
                "total_ms": self._total_ms,
                "interval_s": self.interval,
                "lock_timeout_s": self.lock_timeout,
            }
