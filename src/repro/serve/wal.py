"""Append-only write-ahead log with per-record CRCs and fsync policies.

The :class:`~repro.serve.index.ServingIndex` keeps its durable state as
*checkpoint + log*: the last :func:`repro.core.io.save_graph` checkpoint
plus an append-only log of every maintenance operation applied since.
This module is the log.  Its contract is the classic WAL one:

- **Appends are atomic at the record level.**  Every record is framed
  with a magic number, an explicit 64-bit sequence number, a payload
  length, and a CRC-32 over (sequence, payload).  A crash mid-append
  leaves a *torn tail* — a partial final frame — which the scanner
  detects and drops; every fully-framed record before it is intact.
- **Damage beyond the tail is an error, not a tail.**  A record that
  fails its CRC with further valid-looking frames behind it, a sequence
  number that jumps or moves backwards, or a mangled file header is
  :class:`~repro.errors.WALCorruptionError` — the log did not merely
  lose its last append, it was corrupted, and replaying *around* damage
  could silently reorder history.
- **Truncation is atomic.**  :func:`reset_wal` builds the successor log
  in a temp file and ``os.replace``\\ s it over the old one, so a crash
  mid-checkpoint leaves either the full old log (whose already-applied
  prefix the recovery sequence filter skips) or the fresh empty one.

File format (all integers little-endian)::

    header   "DGWAL1\\n" (7s)  base_seq (u64)  crc32(magic+base_seq) (u32)
    record   0x57414C52 (u32)  seq (u64)  length (u32)
             crc32(seq_bytes + payload) (u32)  payload (length bytes)

``base_seq`` is the sequence number already *applied* by the checkpoint
this log continues from; record sequences are ``base_seq + 1, ...``
strictly consecutive.  Payloads are compact JSON operation dicts (see
:mod:`repro.serve.index`); JSON keeps the log greppable in an incident.

Durability is a policy, not a constant, because fsync is the whole cost
of a durable write (see ``BENCH_serve.json``):

=========  ==========================================================
policy     meaning
=========  ==========================================================
always     fsync after every append — an acked op survives power loss
batch      OS-buffered writes; fsync only on :meth:`WriteAheadLog.sync`
           (checkpoints and clean shutdown call it) — an acked op
           survives a process crash, not necessarily power loss
never      no fsync ever, not even on sync() — benchmarking baseline
=========  ==========================================================
"""

from __future__ import annotations

import json
import os
import struct
import zlib

from repro.core.io import fsync_directory
from repro.errors import WALCorruptionError

#: File-header magic: identifies a DG WAL, version 1.
MAGIC = b"DGWAL1\n"
_HEADER = struct.Struct(f"<{len(MAGIC)}sQI")
#: Per-record frame magic ("WALR" little-endian).
RECORD_MAGIC = 0x57414C52
_FRAME = struct.Struct("<IQI I".replace(" ", ""))

#: Accepted fsync policies (see module docstring).
FSYNC_POLICIES = ("always", "batch", "never")


def _crc_header(base_seq: int) -> int:
    return zlib.crc32(MAGIC + struct.pack("<Q", base_seq)) & 0xFFFFFFFF


def _crc_record(seq: int, payload: bytes) -> int:
    return zlib.crc32(struct.pack("<Q", seq) + payload) & 0xFFFFFFFF


def encode_record(seq: int, op: dict) -> bytes:
    """Frame one operation as an appendable byte string."""
    payload = json.dumps(op, separators=(",", ":"), sort_keys=True).encode()
    return (
        _FRAME.pack(RECORD_MAGIC, seq, len(payload), _crc_record(seq, payload))
        + payload
    )


class WALScan:
    """Result of scanning a log file: header, intact records, tail report.

    Attributes
    ----------
    base_seq:
        Applied-sequence watermark from the file header.
    records:
        ``(seq, op)`` pairs for every fully-framed record, in order.
    valid_bytes:
        File offset just past the last intact record — where an append
        handle must truncate to before writing.
    torn_bytes:
        Bytes of torn tail dropped (0 for a cleanly closed log).
    """

    def __init__(
        self,
        base_seq: int,
        records: list,
        valid_bytes: int,
        torn_bytes: int,
    ) -> None:
        self.base_seq = base_seq
        self.records = records
        self.valid_bytes = valid_bytes
        self.torn_bytes = torn_bytes

    @property
    def last_seq(self) -> int:
        """Sequence of the final intact record (``base_seq`` when empty)."""
        return self.records[-1][0] if self.records else self.base_seq

    def __repr__(self) -> str:
        return (
            f"WALScan(base_seq={self.base_seq}, records={len(self.records)}, "
            f"valid_bytes={self.valid_bytes}, torn_bytes={self.torn_bytes})"
        )


def scan_wal(path: str) -> WALScan:
    """Read a log file, tolerating a torn tail, rejecting real corruption.

    The scanner walks frames from the start.  The first frame that is
    incomplete, fails its magic/CRC, or breaks the consecutive-sequence
    rule ends the scan: if *everything* from that offset to EOF is the
    (at most one frame long) remnant of an interrupted append, it is a
    torn tail and is reported as dropped; if intact frames continue
    behind the damage, the file has a hole in the middle and
    :class:`~repro.errors.WALCorruptionError` is raised — skipping the
    hole would silently drop acknowledged operations.
    """
    with open(path, "rb") as handle:
        data = handle.read()
    if len(data) < _HEADER.size:
        raise WALCorruptionError(
            f"file shorter than the {_HEADER.size}-byte header",
            path=path,
            offset=0,
        )
    magic, base_seq, header_crc = _HEADER.unpack_from(data, 0)
    if magic != MAGIC:
        raise WALCorruptionError("bad header magic", path=path, offset=0)
    if header_crc != _crc_header(base_seq):
        raise WALCorruptionError("header CRC mismatch", path=path, offset=0)

    records: list = []
    offset = _HEADER.size
    expected = base_seq + 1
    while True:
        if offset == len(data):
            return WALScan(base_seq, records, offset, 0)
        if offset + _FRAME.size > len(data):
            break  # incomplete frame header: candidate torn tail
        frame_magic, seq, length, crc = _FRAME.unpack_from(data, offset)
        if frame_magic != RECORD_MAGIC:
            break
        end = offset + _FRAME.size + length
        if end > len(data):
            break  # incomplete payload: candidate torn tail
        payload = data[offset + _FRAME.size:end]
        if crc != _crc_record(seq, payload):
            break
        if seq != expected:
            # A torn tail is a *partial* frame; a complete CRC-valid
            # frame whose sequence jumps or regresses means history has
            # a hole (or a duplicate) and must not be replayed around.
            raise WALCorruptionError(
                f"sequence discontinuity: expected record {expected}, "
                f"found intact record {seq}",
                path=path,
                offset=offset,
            )
        try:
            op = json.loads(payload.decode())
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            # CRC passed but the payload is not an operation: the writer
            # was broken, not the storage.  Never replay it.
            raise WALCorruptionError(
                f"record {seq} has a valid CRC but undecodable payload: {exc}",
                path=path,
                offset=offset,
            ) from exc
        records.append((seq, op))
        offset = end
        expected += 1

    # The frame at `offset` is damaged.  A torn tail is at most one
    # interrupted append; if another intact frame (with the *next*
    # expected sequence) can be parsed anywhere behind it, the damage is
    # a hole, not a tail.
    tail = len(data) - offset
    if _has_frame_beyond(data, offset + 1, expected):
        raise WALCorruptionError(
            f"record {expected} is damaged but intact records follow "
            "(mid-log corruption, not a torn tail)",
            path=path,
            offset=offset,
        )
    return WALScan(base_seq, records, offset, tail)


def _has_frame_beyond(data: bytes, start: int, min_seq: int) -> bool:
    """True when an intact frame with seq >= min_seq parses after start."""
    probe = data.find(struct.pack("<I", RECORD_MAGIC), start)
    while probe != -1:
        if probe + _FRAME.size <= len(data):
            _, seq, length, crc = _FRAME.unpack_from(data, probe)
            end = probe + _FRAME.size + length
            if (
                seq >= min_seq
                and end <= len(data)
                and crc == _crc_record(seq, data[probe + _FRAME.size:end])
            ):
                return True
        probe = data.find(struct.pack("<I", RECORD_MAGIC), probe + 1)
    return False


def create_wal(path: str, base_seq: int = 0) -> None:
    """Write a fresh, empty log atomically (temp file + rename)."""
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "wb") as handle:
            handle.write(_HEADER.pack(MAGIC, base_seq, _crc_header(base_seq)))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        fsync_directory(os.path.dirname(os.path.abspath(path)))
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)


#: Alias making call sites read as what they mean: checkpointing
#: truncates the log by atomically replacing it with an empty successor
#: whose ``base_seq`` is the checkpoint's applied watermark.
reset_wal = create_wal


class WriteAheadLog:
    """Single-writer append handle over a scanned log file.

    Opening scans the file (:func:`scan_wal`), truncates any torn tail,
    and positions for append; the scan's records are exposed so recovery
    reads and the append handle share one pass.  Not thread-safe by
    itself — the :class:`~repro.serve.index.ServingIndex` writer lock
    serializes access, which is the single-writer design of the paper's
    Section V maintenance.
    """

    def __init__(self, path: str, *, fsync: str = "always") -> None:
        if fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"unknown fsync policy {fsync!r} (choose from {FSYNC_POLICIES})"
            )
        self.path = path
        self.fsync = fsync
        self.scan = scan_wal(path)
        self._next_seq = self.scan.last_seq + 1
        self._handle = open(path, "r+b")
        self._handle.truncate(self.scan.valid_bytes)
        self._handle.seek(self.scan.valid_bytes)
        self._synced = True

    @property
    def last_seq(self) -> int:
        """Sequence number of the last appended (or scanned) record."""
        return self._next_seq - 1

    @property
    def closed(self) -> bool:
        """Whether the log file handle has been closed."""
        return self._handle.closed

    def tell(self) -> int:
        """Current append offset (bytes of intact log)."""
        return self._handle.tell()

    def append(self, op: dict) -> int:
        """Frame, write, and (per policy) sync one operation; return its seq."""
        if self._handle.closed:
            raise ValueError("write-ahead log is closed")
        seq = self._next_seq
        self._handle.write(encode_record(seq, op))
        self._handle.flush()
        if self.fsync == "always":
            os.fsync(self._handle.fileno())
        else:
            self._synced = False
        self._next_seq = seq + 1
        return seq

    def sync(self) -> None:
        """Flush and fsync pending appends (no-op under policy ``never``)."""
        if self._handle.closed:
            return
        self._handle.flush()
        if self.fsync != "never" and not self._synced:
            os.fsync(self._handle.fileno())
        self._synced = True

    def close(self) -> None:
        """Sync (per policy) and release the file handle.  Idempotent."""
        if self._handle.closed:
            return
        self.sync()
        self._handle.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"WriteAheadLog(path={self.path!r}, fsync={self.fsync!r}, "
            f"last_seq={self.last_seq}, closed={self.closed})"
        )


def wal_record_offsets(path: str) -> list:
    """Byte offset of every frame boundary, header first, EOF last.

    The crash harness (:mod:`repro.testing.concurrency`) truncates a
    copied log at and between these offsets to simulate a writer killed
    at any point of an append, including mid-record.
    """
    scan = scan_wal(path)
    offsets = [_HEADER.size]
    with open(path, "rb") as handle:
        data = handle.read()
    offset = _HEADER.size
    for _seq, _op in scan.records:
        _, _, length, _ = _FRAME.unpack_from(data, offset)
        offset += _FRAME.size + length
        offsets.append(offset)
    return offsets


# Exposed so tests and the crash harness can compute frame geometry
# without reaching into the struct internals.
FRAME_HEADER_SIZE = _FRAME.size
HEADER_SIZE = _HEADER.size
