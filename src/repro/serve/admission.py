"""Query admission control: bounded concurrency, shedding, retries.

A serving process protects itself before it protects any single query
(per-query protection is :mod:`repro.core.guard`'s job).  This module is
the front door:

- :class:`AdmissionController` bounds how many queries run at once and
  how many may wait for a slot.  Past either bound it *sheds* — raises
  :class:`~repro.errors.ServiceOverloaded` immediately, before any work
  — because a queue that grows without bound converts overload into
  latency for everyone instead of fast failure for the marginal request.
- :func:`retry_with_backoff` wraps a transient-faulty callable with a
  bounded, exponentially backed-off retry loop.  It is a thin
  compatibility shim over :class:`repro.resilience.RetryPolicy`, which
  the serving index now uses directly (deadline-aware: no retry ever
  sleeps past the request's :class:`~repro.resilience.Deadline`).

Everything takes injectable ``clock``/``sleep`` callables so the
deterministic test harness can run interleavings without real waiting.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Callable, Iterator, TypeVar

from repro.errors import QueryBudgetExceeded, ServiceOverloaded
from repro.resilience.deadline import Deadline
from repro.resilience.policy import RetryPolicy

T = TypeVar("T")


class AdmissionStats:
    """Monotone counters the health probe reports (lock-protected)."""

    def __init__(self) -> None:
        self.admitted = 0
        self.completed = 0
        self.shed = 0
        self.peak_active = 0

    def as_dict(self) -> dict:
        """The counters as a plain dict (merged into the health probe)."""
        return {
            "admitted": self.admitted,
            "completed": self.completed,
            "shed": self.shed,
            "peak_active": self.peak_active,
        }


class AdmissionController:
    """Counting-semaphore admission with a bounded waiting room.

    Parameters
    ----------
    max_concurrent:
        Queries allowed to run simultaneously.
    max_waiting:
        Queries allowed to block waiting for a slot; an arrival finding
        the waiting room full is shed immediately.
    wait_timeout:
        Seconds a waiter may block before being shed (``None`` = as
        long as it takes).
    """

    def __init__(
        self,
        max_concurrent: int = 8,
        max_waiting: int = 16,
        wait_timeout: float | None = 5.0,
    ) -> None:
        if max_concurrent < 1:
            raise ValueError("max_concurrent must be at least 1")
        if max_waiting < 0:
            raise ValueError("max_waiting must be non-negative")
        self.max_concurrent = max_concurrent
        self.max_waiting = max_waiting
        self.wait_timeout = wait_timeout
        self._lock = threading.Lock()
        self._slot_freed = threading.Condition(self._lock)
        self._active = 0
        self._waiting = 0
        self.stats = AdmissionStats()

    @property
    def active(self) -> int:
        """Queries currently admitted and running."""
        with self._lock:
            return self._active

    @property
    def waiting(self) -> int:
        """Queries currently blocked waiting for a slot."""
        with self._lock:
            return self._waiting

    @contextmanager
    def admit(
        self,
        timeout: float | None = None,
        deadline: "Deadline | None" = None,
    ) -> Iterator[None]:
        """Hold one execution slot for the duration of the ``with`` body.

        Raises :class:`~repro.errors.ServiceOverloaded` without blocking
        when the waiting room is full, and after ``timeout`` (default:
        the controller's ``wait_timeout``) when no slot frees up.  With
        a request ``deadline``, the wait is additionally clamped to the
        deadline's remaining time and an already-expired deadline raises
        :class:`~repro.errors.DeadlineExceeded` up front — a request
        with no time left must not consume a waiting-room slot.
        """
        if deadline is not None:
            deadline.check(stage="admission")
            timeout = deadline.clamp(
                self.wait_timeout if timeout is None else timeout
            )
        else:
            timeout = self.wait_timeout if timeout is None else timeout
        wait_until = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            if self._active >= self.max_concurrent:
                if self._waiting >= self.max_waiting:
                    self.stats.shed += 1
                    raise ServiceOverloaded(self._active, self._waiting)
                self._waiting += 1
                try:
                    while self._active >= self.max_concurrent:
                        remaining = (
                            None
                            if wait_until is None
                            else wait_until - time.monotonic()
                        )
                        if remaining is not None and remaining <= 0:
                            # Distinguish "the service is busy" from
                            # "this request's time ran out while it
                            # waited": the latter is a deadline expiry,
                            # not an overload shed.
                            if deadline is not None:
                                deadline.check(stage="admission")
                            self.stats.shed += 1
                            raise ServiceOverloaded(
                                self._active, self._waiting
                            )
                        self._slot_freed.wait(remaining)
                finally:
                    self._waiting -= 1
            self._active += 1
            self.stats.admitted += 1
            self.stats.peak_active = max(self.stats.peak_active, self._active)
        try:
            yield
        finally:
            with self._lock:
                self._active -= 1
                self.stats.completed += 1
                self._slot_freed.notify()

    def drain(self, timeout: float | None = None, poll: float = 0.005) -> bool:
        """Block until no query is active; ``True`` when fully drained.

        Used by graceful shutdown after new admissions are cut off; a
        ``timeout`` bounds how long a stuck query may hold up the exit.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            with self._lock:
                if self._active == 0:
                    return True
            if deadline is not None and time.monotonic() >= deadline:
                return False
            time.sleep(poll)

    def snapshot(self) -> dict:
        """Point-in-time view for the health probe."""
        with self._lock:
            return {
                "active": self._active,
                "waiting": self._waiting,
                "max_concurrent": self.max_concurrent,
                "max_waiting": self.max_waiting,
                **self.stats.as_dict(),
            }


def retry_with_backoff(
    fn: Callable[[], T],
    *,
    attempts: int = 3,
    base_delay: float = 0.005,
    factor: float = 2.0,
    retriable: tuple[type[BaseException], ...] = (Exception,),
    fatal: tuple[type[BaseException], ...] = (QueryBudgetExceeded,),
    sleep: Callable[[float], None] = time.sleep,
) -> T:
    """Call ``fn`` until it succeeds, with exponential backoff between tries.

    ``fatal`` exceptions propagate immediately (budget violations must
    never be retried — a retry spends the very budget that tripped);
    ``retriable`` ones are re-attempted up to ``attempts`` total calls,
    sleeping ``base_delay * factor**i`` between them, then re-raised.
    The backoff schedule is deterministic so the chaos suite can assert
    exact behaviour; pass a recording ``sleep`` to observe it.

    Compatibility shim over :class:`repro.resilience.RetryPolicy`; new
    code should construct the policy (it adds deadline awareness).
    """
    return RetryPolicy(
        attempts=attempts,
        base_delay=base_delay,
        factor=factor,
        retriable=retriable,
        fatal=fatal,
        sleep=sleep,
    ).run(fn)
