"""Naive full-scan top-k: the correctness oracle and the floor baseline."""

from __future__ import annotations

import numpy as np

from repro.core.dataset import Dataset
from repro.core.functions import ScoringFunction
from repro.core.result import TopKResult
from repro.metrics.counters import AccessCounter


def naive_top_k(dataset: Dataset, function: ScoringFunction, k: int) -> TopKResult:
    """Exact top-k by scoring every record (cost = |D| computations).

    Ties are broken by smaller record id, the convention shared by every
    algorithm in the repository.

    Examples
    --------
    >>> from repro.core.functions import LinearFunction
    >>> ds = Dataset([[1.0, 0.0], [0.0, 2.0], [3.0, 3.0]])
    >>> naive_top_k(ds, LinearFunction([1.0, 1.0]), 2).ids
    (2, 1)
    """
    if k <= 0:
        raise ValueError("k must be positive")
    stats = AccessCounter()
    scores = function.score_many(dataset.values)
    stats.computed = len(dataset)
    order = np.lexsort((np.arange(len(dataset)), -scores))[:k]
    pairs = [(float(scores[i]), int(i)) for i in order]
    return TopKResult.from_pairs(pairs, stats, algorithm="naive-scan")


def naive_top_k_subset(
    dataset: Dataset,
    record_ids,
    function: ScoringFunction,
    k: int,
    where=None,
    stats: AccessCounter | None = None,
) -> TopKResult:
    """Full scan restricted to ``record_ids`` — the last-resort serving tier.

    Unlike :func:`naive_top_k`, this honours index membership (rows never
    indexed, or mark-deleted ones, are simply not in ``record_ids``) and
    the Advanced Traveler's ``where`` selection predicate, so the query
    guard can fall back to it from a broken DG engine without changing
    answers.  Accesses are charged *before* scoring, so a budget-enforcing
    ``stats`` counter can refuse the scan up front.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    stats = stats if stats is not None else AccessCounter()
    ids = np.fromiter((int(rid) for rid in record_ids), dtype=np.intp)
    if ids.size == 0:
        return TopKResult.from_pairs([], stats, algorithm="naive-scan")
    stats.count_computed_batch(ids)
    block = dataset.values[ids]
    scores = function.score_many(block)
    if where is not None:
        mask = np.fromiter(
            (bool(where(row)) for row in block), dtype=bool, count=ids.size
        )
        ids, scores = ids[mask], scores[mask]
    order = np.lexsort((ids, -scores))[:k]
    pairs = [(float(scores[i]), int(ids[i])) for i in order]
    return TopKResult.from_pairs(pairs, stats, algorithm="naive-scan")
