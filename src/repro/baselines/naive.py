"""Naive full-scan top-k: the correctness oracle and the floor baseline."""

from __future__ import annotations

import numpy as np

from repro.core.dataset import Dataset
from repro.core.functions import ScoringFunction
from repro.core.result import TopKResult
from repro.metrics.counters import AccessCounter


def naive_top_k(dataset: Dataset, function: ScoringFunction, k: int) -> TopKResult:
    """Exact top-k by scoring every record (cost = |D| computations).

    Ties are broken by smaller record id, the convention shared by every
    algorithm in the repository.

    Examples
    --------
    >>> from repro.core.functions import LinearFunction
    >>> ds = Dataset([[1.0, 0.0], [0.0, 2.0], [3.0, 3.0]])
    >>> naive_top_k(ds, LinearFunction([1.0, 1.0]), 2).ids
    (2, 1)
    """
    if k <= 0:
        raise ValueError("k must be positive")
    stats = AccessCounter()
    scores = function.score_many(dataset.values)
    stats.computed = len(dataset)
    order = np.lexsort((np.arange(len(dataset)), -scores))[:k]
    pairs = [(float(scores[i]), int(i)) for i in order]
    return TopKResult.from_pairs(pairs, stats, algorithm="naive-scan")
