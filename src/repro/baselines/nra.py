"""NRA — No Random Access (Fagin et al.; related-work extension).

NRA consumes only sorted accesses, maintaining for every seen record the
lower/upper score bounds of :mod:`repro.baselines.bounds`.  After each
round it takes the k best lower bounds as the tentative answer and stops
when no other record — seen or unseen — can have an upper bound exceeding
the tentative k-th lower bound.

NRA certifies the top-k *set* without ever learning exact scores; the
returned result carries exact scores recomputed for presentation only
(not charged to the counter), as the paper's applications (data streams)
care about the ids.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.bounds import PartialScores
from repro.baselines.sorted_lists import SortedLists
from repro.core.dataset import Dataset
from repro.core.functions import ScoringFunction
from repro.core.result import TopKResult
from repro.metrics.counters import AccessCounter


class NoRandomAccess:
    """NRA over per-dimension ranked lists.

    Examples
    --------
    >>> from repro.core.functions import LinearFunction
    >>> ds = Dataset([[1.0, 5.0], [2.0, 4.0], [0.0, 0.0]])
    >>> NoRandomAccess(ds).top_k(LinearFunction([0.5, 0.5]), 1).ids
    (0,)
    """

    name = "nra"

    def __init__(self, dataset: Dataset, lists: SortedLists | None = None) -> None:
        self._dataset = dataset
        self._lists = lists if lists is not None else SortedLists(dataset)

    def top_k(self, function: ScoringFunction, k: int) -> TopKResult:
        """Answer a top-k query using sorted accesses only."""
        if k <= 0:
            raise ValueError("k must be positive")
        lists = self._lists
        stats = AccessCounter()
        n, dims = len(lists), lists.dims
        partial = PartialScores(dims, lists.floor_vector())

        answer_ids: list = []
        for depth in range(n):
            for dim in range(dims):
                rid, value = lists.entry(dim, depth)
                stats.count_sequential()
                partial.observe(rid, dim, value)
            depth_values = lists.depth_values(depth)
            threshold = function(depth_values)

            seen = partial.seen()
            lower = {rid: partial.lower_bound(rid, function) for rid in seen}
            ranked = sorted(seen, key=lambda r: (-lower[r], r))
            tentative = ranked[:k]
            if len(tentative) < k:
                continue
            kth_lower = lower[tentative[-1]]
            if kth_lower < threshold:
                continue  # an unseen record could still beat the k-th
            contenders = ranked[k:]
            if all(
                partial.upper_bound(rid, function, depth_values) <= kth_lower
                for rid in contenders
            ):
                answer_ids = tentative
                break
        else:
            seen = partial.seen()
            lower = {rid: partial.lower_bound(rid, function) for rid in seen}
            answer_ids = sorted(seen, key=lambda r: (-lower[r], r))[:k]

        if not answer_ids:  # loop never produced k candidates (k > n)
            seen = partial.seen()
            lower = {rid: partial.lower_bound(rid, function) for rid in seen}
            answer_ids = sorted(seen, key=lambda r: (-lower[r], r))[:k]

        # Presentation-only exact scores (NRA certifies the set, not values).
        pairs = sorted(
            ((function(self._dataset.vector(rid)), rid) for rid in answer_ids),
            key=lambda pair: (-pair[0], pair[1]),
        )
        return TopKResult.from_pairs(pairs, stats, algorithm=self.name)
