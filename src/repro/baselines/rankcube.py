"""RankCube — block-based ranking index (Xin et al., VLDB'06; paper ref [17]).

The ranking-cube partitions the data space into rank-aware blocks and
answers a top-k query by visiting blocks in the order of their best
possible score.  Following the paper's own re-implementation protocol
("first partition the dataset into blocks ... then answer top-k query
according to the query algorithm", with selection conditions dropped),
this index:

- offline, grids each dimension into ``blocks_per_dim`` equi-width cells
  and stores, per non-empty cell, its member records and coordinate-wise
  maximum;
- online, pops cells from a max-heap keyed by ``F(cell maximum)`` — an
  upper bound on every member's score for any monotone ``F`` — scoring all
  members of each popped cell, until the k-th best score reaches the best
  remaining cell bound.
"""

from __future__ import annotations

import bisect
import heapq
import itertools

import numpy as np

from repro.core.dataset import Dataset
from repro.core.functions import ScoringFunction
from repro.core.result import TopKResult
from repro.metrics.counters import AccessCounter


class RankCubeIndex:
    """Equi-width grid blocks scanned in best-bound-first order.

    Parameters
    ----------
    dataset:
        The record set.
    blocks_per_dim:
        Grid resolution per dimension; the cell count is bounded by the
        number of *non-empty* cells, so sparse high-dimensional grids stay
        cheap.

    Examples
    --------
    >>> from repro.core.functions import LinearFunction
    >>> ds = Dataset([[4.0, 1.0], [1.0, 4.0], [0.5, 0.5], [3.0, 3.0]])
    >>> RankCubeIndex(ds).top_k(LinearFunction([0.5, 0.5]), 1).ids
    (3,)
    """

    name = "rankcube"

    def __init__(self, dataset: Dataset, blocks_per_dim: int = 8) -> None:
        if blocks_per_dim < 1:
            raise ValueError("blocks_per_dim must be positive")
        self._dataset = dataset
        values = dataset.values
        low = values.min(axis=0)
        high = values.max(axis=0)
        span = np.where(high > low, high - low, 1.0)
        cells = np.floor((values - low) / span * blocks_per_dim).astype(np.intp)
        np.clip(cells, 0, blocks_per_dim - 1, out=cells)

        members: dict = {}
        for rid, key in enumerate(map(tuple, cells)):
            members.setdefault(key, []).append(rid)
        self._cells = [
            (np.asarray(ids, dtype=np.intp), values[ids].max(axis=0))
            for ids in members.values()
        ]

    @property
    def num_cells(self) -> int:
        """Number of non-empty grid cells."""
        return len(self._cells)

    def top_k(self, function: ScoringFunction, k: int) -> TopKResult:
        """Visit cells best-bound-first until the k-th score meets the bound."""
        if k <= 0:
            raise ValueError("k must be positive")
        stats = AccessCounter()
        counter = itertools.count()
        heap = [
            (-function(cell_max), next(counter), ids)
            for ids, cell_max in self._cells
        ]
        heapq.heapify(heap)

        best: list = []  # (-score, record_id)
        while heap:
            neg_bound, _, ids = heapq.heappop(heap)
            if len(best) >= k and -best[k - 1][0] >= -neg_bound:
                break
            scores = function.score_many(self._dataset.values[ids])
            stats.computed += int(ids.size)
            for rid, score in zip(ids, scores):
                bisect.insort(best, (-float(score), int(rid)))
            del best[k:]
        pairs = [(-neg, rid) for neg, rid in best[:k]]
        return TopKResult.from_pairs(pairs, stats, algorithm=self.name)
