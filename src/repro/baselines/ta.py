"""Threshold Algorithm (Fagin, Lotem and Naor; paper ref [2]).

TA walks all ranked lists in parallel, one depth per round.  Every record
surfaced by a sorted access is immediately random-accessed and scored; the
*threshold* ``τ = F(v_1, ..., v_m)`` — the query function applied to the
current per-list depth values — upper-bounds every unseen record's score
(valid for any aggregate monotone ``F``).  The scan stops as soon as k
seen records score at least τ.

Accounting follows the paper's Fig. 7: sequential accesses per list visit,
one random access + one computation per newly seen record.
"""

from __future__ import annotations

import bisect

from repro.baselines.sorted_lists import SortedLists
from repro.core.dataset import Dataset
from repro.core.functions import ScoringFunction
from repro.core.result import TopKResult
from repro.metrics.counters import AccessCounter


class ThresholdAlgorithm:
    """TA over per-dimension ranked lists.

    Examples
    --------
    >>> from repro.core.functions import LinearFunction
    >>> ds = Dataset([[1.0, 5.0], [2.0, 4.0], [0.0, 0.0]])
    >>> ta = ThresholdAlgorithm(ds)
    >>> ta.top_k(LinearFunction([0.5, 0.5]), 1).ids
    (0,)
    """

    name = "ta"

    def __init__(self, dataset: Dataset, lists: SortedLists | None = None) -> None:
        self._dataset = dataset
        self._lists = lists if lists is not None else SortedLists(dataset)

    @property
    def lists(self) -> SortedLists:
        """The ranked-list substrate (shareable with CA/NRA)."""
        return self._lists

    def top_k(self, function: ScoringFunction, k: int) -> TopKResult:
        """Answer a top-k query for any aggregate monotone ``function``."""
        if k <= 0:
            raise ValueError("k must be positive")
        lists = self._lists
        stats = AccessCounter()
        n, dims = len(lists), lists.dims

        seen: set = set()
        best: list = []  # (-score, record_id) ascending == best first

        for depth in range(n):
            for dim in range(dims):
                rid, _ = lists.entry(dim, depth)
                stats.count_sequential()
                if rid in seen:
                    continue
                seen.add(rid)
                stats.count_random()
                score = function(self._dataset.vector(rid))
                stats.count_computed(rid)
                bisect.insort(best, (-score, rid))
                if len(best) > k:
                    best.pop()
            threshold = function(lists.depth_values(depth))
            if len(best) >= k and -best[k - 1][0] >= threshold:
                break

        pairs = [(-neg, rid) for neg, rid in best[:k]]
        return TopKResult.from_pairs(pairs, stats, algorithm=self.name)
