"""PREFER — view-based top-k (Hristidis et al., SIGMOD'01; paper ref [6]).

PREFER materializes *view sequences*: full rankings of the relation under
a handful of linear view vectors ``v``.  A query ``q`` is answered from
the view most similar to it by scanning the view's ranking prefix and
maintaining a *watermark*: given that every unscanned record ``u``
satisfies ``v·u <= s`` (``s`` = view score of the last scanned record) and
lies inside the data's bounding box, the largest query score any of them
can reach is::

    W(s) = max  q·u   subject to  v·u <= s,  low <= u <= high

— a one-constraint LP over a box, solved exactly by the fractional
greedy in :func:`watermark_bound` (raise coordinates in decreasing
``q_i / v_i`` order).  Once the current k-th best query score reaches the
watermark, the scan stops.

The original PREFER system precomputes watermark tables offline; the
closed-form evaluation here is the documented substitution (DESIGN.md) —
same accesses, same stopping point, no tables.
"""

from __future__ import annotations

import bisect

import numpy as np

from repro.baselines.appri import sample_query_vectors
from repro.core.dataset import Dataset
from repro.core.functions import LinearFunction
from repro.core.result import TopKResult
from repro.metrics.counters import AccessCounter


def watermark_bound(
    query: np.ndarray,
    view: np.ndarray,
    budget_score: float,
    low: np.ndarray,
    high: np.ndarray,
) -> float:
    """Exact maximum of ``q·u`` over ``{u in box : v·u <= budget_score}``.

    Greedy fractional solution of the single-constraint LP: free dimensions
    (``v_i = 0``) are maxed outright; the rest are raised from ``low``
    toward ``high`` in decreasing ``q_i / v_i`` order until the budget is
    spent.

    Examples
    --------
    >>> watermark_bound(np.array([1.0, 1.0]), np.array([1.0, 1.0]), 1.0,
    ...                 np.zeros(2), np.ones(2))
    1.0
    """
    u = low.astype(np.float64).copy()
    free = view <= 0.0
    u[free] = high[free]
    budget = budget_score - float(view @ u)
    if budget < 0.0:
        # The budget cannot even cover the box floor: the constraint set is
        # empty below `low`; clamp to the floor bound.
        return float(query @ u)
    priced = np.flatnonzero(~free)
    efficiency = query[priced] / view[priced]
    for idx in priced[np.argsort(-efficiency)]:
        room = high[idx] - u[idx]
        cost = room * view[idx]
        if cost <= budget:
            u[idx] = high[idx]
            budget -= cost
        else:
            u[idx] += budget / view[idx]
            budget = 0.0
            break
    return float(query @ u)


class PreferIndex:
    """Materialized ranked views with watermark-based query processing.

    Parameters
    ----------
    dataset:
        The record set.
    view_vectors:
        Explicit linear view vectors; defaults to a deterministic spread
        over the weight simplex (corners, midpoints, centroid — the
        coverage PREFER's offline view selection aims for).

    Examples
    --------
    >>> ds = Dataset([[4.0, 1.0], [1.0, 4.0], [0.5, 0.5], [3.0, 3.0]])
    >>> PreferIndex(ds).top_k(LinearFunction([0.5, 0.5]), 1).ids
    (3,)
    """

    name = "prefer"

    def __init__(
        self, dataset: Dataset, view_vectors: np.ndarray | None = None
    ) -> None:
        self._dataset = dataset
        if view_vectors is None:
            view_vectors = sample_query_vectors(dataset.dims, extra=0)
        self._views = np.asarray(view_vectors, dtype=np.float64)
        if self._views.ndim != 2 or self._views.shape[1] != dataset.dims:
            raise ValueError("view vectors must be (V, m)")
        values = dataset.values
        n = len(dataset)
        self._orders = []
        self._view_scores = []
        for v in self._views:
            scores = values @ v
            order = np.lexsort((np.arange(n), -scores))
            self._orders.append(order)
            self._view_scores.append(scores[order])
        self._low = values.min(axis=0)
        self._high = values.max(axis=0)

    @property
    def num_views(self) -> int:
        return self._views.shape[0]

    def best_view(self, function: LinearFunction) -> int:
        """Index of the view with the largest cosine similarity to ``q``."""
        q = function.weights
        norms = np.linalg.norm(self._views, axis=1) * (np.linalg.norm(q) or 1.0)
        similarity = (self._views @ q) / np.where(norms > 0, norms, 1.0)
        return int(np.argmax(similarity))

    def top_k(self, function: LinearFunction, k: int) -> TopKResult:
        """Scan the most similar view until the watermark certifies top-k."""
        if k <= 0:
            raise ValueError("k must be positive")
        if not isinstance(function, LinearFunction):
            raise TypeError(
                "PREFER only supports linear query functions; got "
                f"{type(function).__name__}"
            )
        stats = AccessCounter()
        view_index = self.best_view(function)
        order = self._orders[view_index]
        view_scores = self._view_scores[view_index]
        view_vector = self._views[view_index]
        q = function.weights

        best: list = []  # (-score, record_id)
        n = order.shape[0]
        for position in range(n):
            rid = int(order[position])
            stats.count_sequential()
            score = function(self._dataset.vector(rid))
            stats.count_computed(rid)
            bisect.insort(best, (-score, rid))
            del best[k:]
            if len(best) < k:
                continue
            watermark = watermark_bound(
                q,
                view_vector,
                float(view_scores[position]),
                self._low,
                self._high,
            )
            if -best[k - 1][0] >= watermark:
                break
        pairs = [(-neg, rid) for neg, rid in best[:k]]
        return TopKResult.from_pairs(pairs, stats, algorithm=self.name)
