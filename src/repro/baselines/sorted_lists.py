"""Per-dimension ranked lists: the substrate of TA, CA and NRA.

Fagin's middleware model assumes ``m`` lists, each ranking all records by
one attribute in descending order, supporting *sorted access* (read the
next (record, value) pair of a list) and *random access* (fetch any
record's full vector by id).  :class:`SortedLists` materializes those lists
from a :class:`~repro.core.dataset.Dataset` once, offline; the online
algorithms charge every access to their
:class:`~repro.metrics.counters.AccessCounter`.
"""

from __future__ import annotations

import numpy as np

from repro.core.dataset import Dataset


class SortedLists:
    """Descending per-dimension ranked lists over a dataset.

    Examples
    --------
    >>> lists = SortedLists(Dataset([[1.0, 5.0], [2.0, 4.0]]))
    >>> lists.entry(0, 0)   # best record in dimension 0
    (1, 2.0)
    >>> lists.entry(1, 0)   # best record in dimension 1
    (0, 5.0)
    """

    def __init__(self, dataset: Dataset) -> None:
        self._dataset = dataset
        values = dataset.values
        # Stable descending sort; ties resolved by ascending record id.
        self._orders = [
            np.lexsort((np.arange(len(dataset)), -values[:, d]))
            for d in range(dataset.dims)
        ]

    @property
    def dataset(self) -> Dataset:
        return self._dataset

    @property
    def dims(self) -> int:
        return self._dataset.dims

    def __len__(self) -> int:
        return len(self._dataset)

    def entry(self, dim: int, depth: int) -> tuple:
        """``(record_id, value)`` at position ``depth`` of list ``dim``."""
        rid = int(self._orders[dim][depth])
        return rid, float(self._dataset.values[rid, dim])

    def depth_values(self, depth: int) -> np.ndarray:
        """Per-dimension values at one depth — the TA threshold vector."""
        return np.array(
            [self.entry(d, depth)[1] for d in range(self.dims)], dtype=np.float64
        )

    def floor_vector(self) -> np.ndarray:
        """Per-dimension minima: the worst possible unknown attribute."""
        return self._dataset.values.min(axis=0)
