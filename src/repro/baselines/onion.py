"""ONION — convex-hull layer index (Chang et al., SIGMOD'00; paper ref [5]).

Offline, ONION peels the dataset into convex-hull layers: layer 1 is the
hull of D, layer i the hull of what remains.  For a *linear* query the
optimum over any set lies on its hull, so the top-k answer is contained in
the first k layers; the online phase therefore scores layers 1..k in full
("when the algorithm accesses the nth layer, all records before the nth
layer need to be accessed", Section VII).

The hull substrate is ``scipy.spatial.ConvexHull`` — the same Qhull
library the paper's authors used.  Degenerate blocks (rank-deficient or
too few points) are retried with joggle ("QJ") and ultimately become a
single final layer, which preserves the containment guarantee (a superset
layer never loses answers).

ONION supports linear functions only — one of the two DG advantages the
paper highlights (the other being maintenance cost: deleting from layer n
forces re-computing every deeper hull, which
:meth:`OnionIndex.delete_and_rebuild` reproduces faithfully).
"""

from __future__ import annotations

import bisect

import numpy as np
from scipy.spatial import ConvexHull, QhullError

from repro.core.dataset import Dataset
from repro.core.functions import LinearFunction
from repro.core.result import TopKResult
from repro.metrics.counters import AccessCounter


def convex_hull_layers(values: np.ndarray) -> list:
    """Peel ``values`` into convex-hull layers (lists of row indices).

    Examples
    --------
    >>> layers = convex_hull_layers(np.array(
    ...     [[0.0, 0.0], [4.0, 0.0], [0.0, 4.0], [4.0, 4.0], [2.0, 2.0]]))
    >>> [sorted(layer.tolist()) for layer in layers]
    [[0, 1, 2, 3], [4]]
    """
    values = np.asarray(values, dtype=np.float64)
    remaining = np.arange(values.shape[0], dtype=np.intp)
    dims = values.shape[1]
    layers: list = []
    while remaining.size:
        if remaining.size <= dims + 1:
            layers.append(remaining)
            break
        block = values[remaining]
        vertices = _hull_vertices(block)
        if vertices is None or vertices.size == remaining.size:
            layers.append(remaining)
            break
        layers.append(remaining[vertices])
        mask = np.ones(remaining.size, dtype=bool)
        mask[vertices] = False
        remaining = remaining[mask]
    return layers


def _hull_vertices(block: np.ndarray) -> np.ndarray | None:
    """Hull vertex indices of a block, joggling degenerate inputs."""
    if block.shape[1] == 1:
        # The 1-d hull is the pair of extremes (all ties included).
        column = block[:, 0]
        mask = (column == column.max()) | (column == column.min())
        return np.flatnonzero(mask).astype(np.intp)
    try:
        return np.asarray(ConvexHull(block).vertices, dtype=np.intp)
    except QhullError:
        try:
            return np.asarray(ConvexHull(block, qhull_options="QJ").vertices, dtype=np.intp)
        except QhullError:
            return None


class OnionIndex:
    """Convex-hull layer index answering linear top-k queries.

    Examples
    --------
    >>> ds = Dataset([[4.0, 1.0], [1.0, 4.0], [0.5, 0.5], [3.0, 3.0]])
    >>> onion = OnionIndex(ds)
    >>> onion.top_k(LinearFunction([0.5, 0.5]), 1).ids
    (3,)
    """

    name = "onion"

    def __init__(self, dataset: Dataset, record_ids=None) -> None:
        self._dataset = dataset
        if record_ids is None:
            ids = np.arange(len(dataset), dtype=np.intp)
        else:
            ids = np.asarray(sorted(set(int(r) for r in record_ids)), dtype=np.intp)
            if ids.size == 0:
                raise ValueError("record_ids must select at least one record")
        local_layers = convex_hull_layers(dataset.values[ids])
        self._layers = [ids[layer] for layer in local_layers]

    @property
    def dataset(self) -> Dataset:
        return self._dataset

    def layer_sizes(self) -> list:
        """Record count per hull layer, outermost first."""
        return [int(layer.size) for layer in self._layers]

    @property
    def num_layers(self) -> int:
        return len(self._layers)

    def top_k(self, function: LinearFunction, k: int) -> TopKResult:
        """Score layers 1..k in full and report the best k records."""
        if k <= 0:
            raise ValueError("k must be positive")
        if not isinstance(function, LinearFunction):
            raise TypeError(
                "ONION only supports linear query functions (paper Section I); "
                f"got {type(function).__name__}"
            )
        stats = AccessCounter()
        best: list = []  # (-score, record_id)
        for layer in self._layers[: min(k, len(self._layers))]:
            scores = function.score_many(self._dataset.values[layer])
            stats.computed += int(layer.size)
            for rid, score in zip(layer, scores):
                bisect.insort(best, (-float(score), int(rid)))
            del best[k:]
        pairs = [(-neg, rid) for neg, rid in best[:k]]
        return TopKResult.from_pairs(pairs, stats, algorithm=self.name)

    def delete_and_rebuild(self, record_id: int) -> None:
        """Deletion as the paper describes it: re-peel every affected layer.

        "If we delete a record R in the nth convex hull layer, all mth
        layers need to be re-computed, where m >= n."  Layers above n are
        kept; everything from layer n down is re-peeled from scratch.
        """
        home = next(
            (i for i, layer in enumerate(self._layers) if record_id in layer), None
        )
        if home is None:
            raise KeyError(f"record {record_id} is not indexed")
        kept = self._layers[:home]
        tail_ids = np.concatenate(self._layers[home:])
        tail_ids = tail_ids[tail_ids != record_id]
        if tail_ids.size:
            # Re-peel the tail in the original coordinate space.
            sub_layers = convex_hull_layers(self._dataset.values[tail_ids])
            kept = kept + [tail_ids[layer] for layer in sub_layers]
        self._layers = kept

    def insert_and_rebuild(self, record_id: int) -> None:
        """Insertion: locate the first layer whose hull the record escapes,
        then re-peel from there (everything deeper can change)."""
        for i, layer in enumerate(self._layers):
            if record_id in layer:
                raise ValueError(f"record {record_id} already indexed")
        point = self._dataset.vector(record_id)
        home = len(self._layers)
        for i, layer in enumerate(self._layers):
            block = np.vstack([self._dataset.values[layer], point[None, :]])
            vertices = _hull_vertices(block)
            if vertices is None or (block.shape[0] - 1) in vertices:
                home = i
                break
        tail = self._layers[home:]
        tail_ids = (
            np.concatenate(tail + [np.asarray([record_id], dtype=np.intp)])
            if tail
            else np.asarray([record_id], dtype=np.intp)
        )
        sub_layers = convex_hull_layers(self._dataset.values[tail_ids])
        self._layers = self._layers[:home] + [tail_ids[layer] for layer in sub_layers]
