"""AppRI — robust layered index (Xin, Chen and Han, VLDB'06; paper ref [1]).

AppRI assigns every record ``t`` to layer ``l*(t)``, its *minimal rank*
over all linear preference queries: ``t`` is in layer ``l`` iff no linear
query puts it in the top ``l-1`` but some query puts it in the top ``l``.
Any top-k answer then lies within the first k layers, and the online phase
scans layers in order — reading *every* record of each visited layer,
which is the access pattern the paper beats (DG's search space is reported
as less than 1/5 of AppRI's).

Substitution (documented in DESIGN.md): the original's exact minimal-rank
computation is an involved geometric construction; here ``l*(t)`` is
estimated as the minimum observed rank over a deterministic spread of
linear queries (simplex corners, pairwise midpoints, centroid, and a
seeded random sample), floored by the exact dominance lower bound
``1 + |dominators(t)|``.  Estimated layers can only be *too deep* (the
sampled minimum over-estimates the true minimum rank), so the online scan
keeps a correct per-layer upper-bound stopping rule: after each layer, if
the current k-th best score beats ``F`` of every remaining layer's
coordinate-wise maximum vector, the scan stops.  Results are therefore
exact for every monotone function even though layer assignment is
approximate.
"""

from __future__ import annotations

import bisect
import itertools

import numpy as np

from repro.core.dataset import Dataset
from repro.core.dominance import dominators_of
from repro.core.functions import ScoringFunction
from repro.core.result import TopKResult
from repro.metrics.counters import AccessCounter


def sample_query_vectors(dims: int, extra: int = 48, seed: int = 0) -> np.ndarray:
    """Deterministic spread of unit-sum weight vectors over the simplex.

    Includes every corner (single-attribute queries), every pairwise
    midpoint, the centroid, and ``extra`` seeded Dirichlet samples.
    """
    vectors: list = []
    for d in range(dims):
        corner = np.zeros(dims)
        corner[d] = 1.0
        vectors.append(corner)
    for a, b in itertools.combinations(range(dims), 2):
        mid = np.zeros(dims)
        mid[a] = mid[b] = 0.5
        vectors.append(mid)
    vectors.append(np.full(dims, 1.0 / dims))
    rng = np.random.default_rng(seed)
    if extra > 0:
        vectors.extend(rng.dirichlet(np.ones(dims), size=extra))
    return np.vstack(vectors)


def exact_minimum_rank_2d(values: np.ndarray) -> np.ndarray:
    """Exact minimal rank over all linear queries, for 2-d data.

    In two dimensions every non-negative linear query is ``q_w = (w, 1-w)``
    with ``w in [0, 1]``.  Record ``s`` outranks record ``t`` exactly on an
    interval of ``w`` values (where ``w (s1-t1) + (1-w)(s2-t2) > 0``), so
    ``min-rank(t) - 1`` is the minimum overlap count of n-1 intervals — an
    O(n log n) sweep per record.  Ties resolve in t's favour (a record tied
    with t does not outrank it), matching :func:`minimum_rank_estimate`'s
    strict-inequality rank definition.

    Returns 1-based ranks, like :func:`minimum_rank_estimate`.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.shape[1] != 2:
        raise ValueError("exact_minimum_rank_2d requires 2-d data")
    n = values.shape[0]
    ranks = np.empty(n, dtype=np.intp)
    for i in range(n):
        delta = values - values[i]  # rows: (s1-t1, s2-t2)
        always = 0
        right_crossings: list = []  # s outranks t strictly for w > c
        left_crossings: list = []   # s outranks t strictly for w < c
        for j in range(n):
            if j == i:
                continue
            a, b = delta[j, 0], delta[j, 1]
            # score_w(s) - score_w(t) = w*a + (1-w)*b = b + w(a-b)
            if a <= 0 and b <= 0:
                continue  # never strictly outranks t
            if a > 0 and b > 0:
                always += 1
                continue
            crossing = -b / (a - b)  # the single sign change
            if a > 0:  # b <= 0: outranks on (crossing, 1]
                right_crossings.append(crossing)
            else:  # b > 0, a <= 0: outranks on [0, crossing)
                left_crossings.append(crossing)
        # The outranking count is piecewise constant in w and only *drops*
        # exactly at a crossing (challengers tie there), so the minimum is
        # attained at w = 0, w = 1, or some crossing value.
        rights = np.sort(np.asarray(right_crossings))
        lefts = np.sort(np.asarray(left_crossings))
        candidates = {0.0, 1.0}
        candidates.update(float(c) for c in rights if 0.0 <= c <= 1.0)
        candidates.update(float(c) for c in lefts if 0.0 <= c <= 1.0)
        best = n  # upper bound
        for w in candidates:
            beating = (
                always
                + int(np.searchsorted(rights, w, side="left"))   # c_j < w
                + len(lefts) - int(np.searchsorted(lefts, w, side="right"))  # c_j > w
            )
            best = min(best, beating)
        ranks[i] = best + 1
    return ranks


def minimum_rank_estimate(
    values: np.ndarray, queries: np.ndarray
) -> np.ndarray:
    """Per-record min rank over the query sample, floored by dominance.

    Returns 1-based ranks: ``result[i] = 1`` means some sampled query puts
    record ``i`` first.
    """
    n = values.shape[0]
    best = np.full(n, n, dtype=np.intp)
    for q in queries:
        scores = values @ q
        order = np.lexsort((np.arange(n), -scores))
        ranks = np.empty(n, dtype=np.intp)
        ranks[order] = np.arange(1, n + 1)
        np.minimum(best, ranks, out=best)
    # Exact lower bound: every dominator outranks the record under every
    # monotone query, so min-rank >= dominators + 1.
    for i in range(n):
        lower = int(dominators_of(values[i], values).sum()) + 1
        if best[i] < lower:
            best[i] = lower
    return best


class AppRIIndex:
    """Min-rank layered index with a correct upper-bound scan.

    Examples
    --------
    >>> from repro.core.functions import LinearFunction
    >>> ds = Dataset([[4.0, 1.0], [1.0, 4.0], [0.5, 0.5], [3.0, 3.0]])
    >>> AppRIIndex(ds).top_k(LinearFunction([0.5, 0.5]), 1).ids
    (3,)
    """

    name = "appri"

    def __init__(self, dataset: Dataset, extra_queries: int = 48, seed: int = 0) -> None:
        self._dataset = dataset
        if dataset.dims == 2:
            # Two dimensions admit the exact minimal-rank sweep; sampling
            # is only needed beyond that.
            min_ranks = exact_minimum_rank_2d(dataset.values)
        else:
            queries = sample_query_vectors(
                dataset.dims, extra=extra_queries, seed=seed
            )
            min_ranks = minimum_rank_estimate(dataset.values, queries)
        depth = int(min_ranks.max())
        self._layers = [
            np.flatnonzero(min_ranks == level + 1) for level in range(depth)
        ]
        self._layers = [layer for layer in self._layers if layer.size]
        # Per-layer coordinate-wise maxima: the upper-bound vectors that
        # make the scan's early termination correct for any monotone F.
        self._layer_max = [
            self._dataset.values[layer].max(axis=0) for layer in self._layers
        ]

    def layer_sizes(self) -> list:
        """Record count per min-rank layer."""
        return [int(layer.size) for layer in self._layers]

    @property
    def num_layers(self) -> int:
        return len(self._layers)

    def top_k(self, function: ScoringFunction, k: int) -> TopKResult:
        """Scan min-rank layers in order with upper-bound early stopping."""
        if k <= 0:
            raise ValueError("k must be positive")
        stats = AccessCounter()
        best: list = []  # (-score, record_id)
        for index, layer in enumerate(self._layers):
            scores = function.score_many(self._dataset.values[layer])
            stats.computed += int(layer.size)
            for rid, score in zip(layer, scores):
                bisect.insort(best, (-float(score), int(rid)))
            del best[k:]
            if len(best) < k:
                continue
            kth = -best[k - 1][0]
            remaining_bound = max(
                (
                    function(upper)
                    for upper in self._layer_max[index + 1:]
                ),
                default=float("-inf"),
            )
            if kth >= remaining_bound:
                break
        pairs = [(-neg, rid) for neg, rid in best[:k]]
        return TopKResult.from_pairs(pairs, stats, algorithm=self.name)
