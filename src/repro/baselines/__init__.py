"""Baseline top-k algorithms the paper evaluates against (Section VI).

Sorted-list family (Fagin et al.): :mod:`~repro.baselines.ta`,
:mod:`~repro.baselines.ca`, :mod:`~repro.baselines.nra` over the shared
:mod:`~repro.baselines.sorted_lists` substrate.

Layer family: :mod:`~repro.baselines.onion` (convex-hull layers) and
:mod:`~repro.baselines.appri` (robust min-rank layers).

View family: :mod:`~repro.baselines.prefer` and :mod:`~repro.baselines.lpta`.

Plus :mod:`~repro.baselines.rankcube` (block-ordered scan) and the
:mod:`~repro.baselines.naive` full scan every test compares against.
"""

from repro.baselines.appri import AppRIIndex
from repro.baselines.ca import CombinedAlgorithm
from repro.baselines.lpta import LPTAIndex
from repro.baselines.naive import naive_top_k
from repro.baselines.nra import NoRandomAccess
from repro.baselines.onion import OnionIndex
from repro.baselines.prefer import PreferIndex
from repro.baselines.rankcube import RankCubeIndex
from repro.baselines.sorted_lists import SortedLists
from repro.baselines.ta import ThresholdAlgorithm

__all__ = [
    "AppRIIndex",
    "CombinedAlgorithm",
    "LPTAIndex",
    "NoRandomAccess",
    "OnionIndex",
    "PreferIndex",
    "RankCubeIndex",
    "SortedLists",
    "ThresholdAlgorithm",
    "naive_top_k",
]
