"""Partial-information score bounds shared by NRA and CA.

Under sorted access a record is known only in the dimensions whose lists
have surfaced it.  For an aggregate monotone F:

- upper bound: unknown attributes can be at most the current depth value
  of their list (lists descend), so ``ub = F(known ⊔ depth_values)``;
- lower bound: unknown attributes are at least the dataset's per-dimension
  minimum, so ``lb = F(known ⊔ floor)``.

:class:`PartialScores` tracks the known fragments and evaluates both
bounds; it deliberately does *not* touch the dataset's full vectors — that
would be a random access, which is exactly what NRA forbids and CA
rations.
"""

from __future__ import annotations

import numpy as np

from repro.core.functions import ScoringFunction


class PartialScores:
    """Known attribute fragments of the records seen under sorted access."""

    def __init__(self, dims: int, floor: np.ndarray) -> None:
        self._dims = dims
        self._floor = np.asarray(floor, dtype=np.float64)
        self._known: dict = {}

    def observe(self, record_id: int, dim: int, value: float) -> None:
        """Record that list ``dim`` surfaced this record with ``value``."""
        fragment = self._known.get(record_id)
        if fragment is None:
            fragment = np.full(self._dims, np.nan)
            self._known[record_id] = fragment
        fragment[dim] = value

    def observe_full(self, record_id: int, vector: np.ndarray) -> None:
        """Record a random access: the whole vector is now known."""
        self._known[record_id] = np.asarray(vector, dtype=np.float64).copy()

    def seen(self) -> list:
        """Ids of all records surfaced so far."""
        return list(self._known)

    def is_resolved(self, record_id: int) -> bool:
        """True when every attribute of the record is known."""
        fragment = self._known[record_id]
        return not np.isnan(fragment).any()

    def upper_bound(
        self, record_id: int, function: ScoringFunction, depth_values: np.ndarray
    ) -> float:
        """Best possible score: unknown attributes at the depth values."""
        fragment = self._known[record_id]
        filled = np.where(np.isnan(fragment), depth_values, fragment)
        return function(filled)

    def lower_bound(self, record_id: int, function: ScoringFunction) -> float:
        """Worst possible score: unknown attributes at the column minima."""
        fragment = self._known[record_id]
        filled = np.where(np.isnan(fragment), self._floor, fragment)
        return function(filled)
