"""LPTA — linear-programming TA over materialized views (Das et al.,
VLDB'06; paper ref [7]; related-work extension).

LPTA answers a linear query from *several* ranked views at once, TA-style:
the view rankings are consumed in lockstep, each surfaced record is
random-accessed and scored, and the stopping bound is the LP::

    max  q·u   subject to  v_j·u <= s_j  for every view j,
                           low <= u <= high

where ``s_j`` is the view score at the current scan depth of view j — the
tightest linear relaxation of "u has not yet been seen in any view".  The
scan stops when the k-th best exact score reaches the LP optimum.

The LP substrate is ``scipy.optimize.linprog`` (HiGHS).
"""

from __future__ import annotations

import bisect

import numpy as np
from scipy.optimize import linprog

from repro.baselines.appri import sample_query_vectors
from repro.core.dataset import Dataset
from repro.core.functions import LinearFunction
from repro.core.result import TopKResult
from repro.metrics.counters import AccessCounter


class LPTAIndex:
    """Lockstep multi-view scan with an LP stopping bound.

    Parameters
    ----------
    dataset:
        The record set.
    view_vectors:
        Linear view vectors (default: simplex corners — the views LPTA's
        analysis starts from, whose conic hull covers every non-negative
        query).
    bound_period:
        Solve the LP every this many scan rounds (it is by far the most
        expensive step; the bound only tightens monotonically, so checking
        less often trades a few extra accesses for fewer LP solves).

    Examples
    --------
    >>> ds = Dataset([[4.0, 1.0], [1.0, 4.0], [0.5, 0.5], [3.0, 3.0]])
    >>> LPTAIndex(ds).top_k(LinearFunction([0.5, 0.5]), 1).ids
    (3,)
    """

    name = "lpta"

    def __init__(
        self,
        dataset: Dataset,
        view_vectors: np.ndarray | None = None,
        bound_period: int = 4,
    ) -> None:
        if bound_period < 1:
            raise ValueError("bound_period must be positive")
        self._dataset = dataset
        if view_vectors is None:
            view_vectors = sample_query_vectors(dataset.dims, extra=0)[: dataset.dims]
        self._views = np.asarray(view_vectors, dtype=np.float64)
        if self._views.ndim != 2 or self._views.shape[1] != dataset.dims:
            raise ValueError("view vectors must be (V, m)")
        self._bound_period = bound_period
        values = dataset.values
        n = len(dataset)
        self._orders = []
        self._view_scores = []
        for v in self._views:
            scores = values @ v
            order = np.lexsort((np.arange(n), -scores))
            self._orders.append(order)
            self._view_scores.append(scores[order])
        self._low = values.min(axis=0)
        self._high = values.max(axis=0)

    @property
    def num_views(self) -> int:
        return self._views.shape[0]

    def _lp_bound(self, query: np.ndarray, budgets: np.ndarray) -> float:
        """Optimum of the unseen-record relaxation LP (see module doc)."""
        result = linprog(
            c=-query,
            A_ub=self._views,
            b_ub=budgets,
            bounds=list(zip(self._low, self._high)),
            method="highs",
        )
        if not result.success:
            # Infeasible relaxation means no unseen record can exist at all.
            return float("-inf")
        return float(-result.fun)

    def top_k(self, function: LinearFunction, k: int) -> TopKResult:
        """Answer a linear top-k query from the materialized views."""
        if k <= 0:
            raise ValueError("k must be positive")
        if not isinstance(function, LinearFunction):
            raise TypeError(
                "LPTA only supports linear query functions; got "
                f"{type(function).__name__}"
            )
        stats = AccessCounter()
        q = function.weights
        n = len(self._dataset)
        seen: set = set()
        best: list = []  # (-score, record_id)

        for depth in range(n):
            for view_index, order in enumerate(self._orders):
                rid = int(order[depth])
                stats.count_sequential()
                if rid in seen:
                    continue
                seen.add(rid)
                stats.count_random()
                score = function(self._dataset.vector(rid))
                stats.count_computed(rid)
                bisect.insort(best, (-score, rid))
                del best[k:]
            if len(best) < k:
                continue
            if (depth + 1) % self._bound_period and depth + 1 < n:
                continue
            budgets = np.array(
                [float(scores[depth]) for scores in self._view_scores]
            )
            bound = self._lp_bound(q, budgets)
            if -best[k - 1][0] >= bound:
                break
        pairs = [(-neg, rid) for neg, rid in best[:k]]
        return TopKResult.from_pairs(pairs, stats, algorithm=self.name)
