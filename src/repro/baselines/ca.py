"""CA — Combined Algorithm (Fagin, Lotem and Naor; paper ref [2]).

CA interpolates between TA and NRA when random accesses cost ``h`` times a
sorted access: it runs NRA-style rounds of sorted access, and every ``h``
rounds spends one random access on the unresolved seen record with the
best upper bound (the record whose uncertainty most blocks termination).
Termination is NRA's condition with resolved records contributing exact
scores.

Per the paper's evaluation, "In CA, we only count the number of random
access times" — both tallies are kept; Fig. 7 reads ``stats.random``.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.bounds import PartialScores
from repro.baselines.sorted_lists import SortedLists
from repro.core.dataset import Dataset
from repro.core.functions import ScoringFunction
from repro.core.result import TopKResult
from repro.metrics.counters import AccessCounter


class CombinedAlgorithm:
    """CA over per-dimension ranked lists.

    Parameters
    ----------
    dataset:
        The record set.
    cost_ratio:
        ``h`` = (random access cost) / (sorted access cost); one random
        access is performed every ``h`` rounds.  Fagin's analysis sets the
        period to the cost ratio; the default 10 reflects a disk seek vs.
        sequential read.

    Examples
    --------
    >>> from repro.core.functions import LinearFunction
    >>> ds = Dataset([[1.0, 5.0], [2.0, 4.0], [0.0, 0.0]])
    >>> CombinedAlgorithm(ds).top_k(LinearFunction([0.5, 0.5]), 1).ids
    (0,)
    """

    name = "ca"

    def __init__(
        self,
        dataset: Dataset,
        cost_ratio: int = 10,
        lists: SortedLists | None = None,
    ) -> None:
        if cost_ratio < 1:
            raise ValueError("cost_ratio must be at least 1")
        self._dataset = dataset
        self._cost_ratio = cost_ratio
        self._lists = lists if lists is not None else SortedLists(dataset)

    def top_k(self, function: ScoringFunction, k: int) -> TopKResult:
        """Answer a top-k query with rationed random accesses."""
        if k <= 0:
            raise ValueError("k must be positive")
        lists = self._lists
        stats = AccessCounter()
        n, dims = len(lists), lists.dims
        partial = PartialScores(dims, lists.floor_vector())

        answer: list = []
        for depth in range(n):
            for dim in range(dims):
                rid, value = lists.entry(dim, depth)
                stats.count_sequential()
                partial.observe(rid, dim, value)
            depth_values = lists.depth_values(depth)
            threshold = function(depth_values)

            if (depth + 1) % self._cost_ratio == 0:
                self._spend_random_access(partial, function, depth_values, stats)

            seen = partial.seen()
            lower = {rid: partial.lower_bound(rid, function) for rid in seen}
            ranked = sorted(seen, key=lambda r: (-lower[r], r))
            tentative = ranked[:k]
            if len(tentative) < k:
                continue
            kth_lower = lower[tentative[-1]]
            if kth_lower < threshold:
                continue
            if all(
                partial.upper_bound(rid, function, depth_values) <= kth_lower
                for rid in ranked[k:]
            ):
                answer = tentative
                break
        else:
            seen = partial.seen()
            lower = {rid: partial.lower_bound(rid, function) for rid in seen}
            answer = sorted(seen, key=lambda r: (-lower[r], r))[:k]

        if not answer:
            seen = partial.seen()
            lower = {rid: partial.lower_bound(rid, function) for rid in seen}
            answer = sorted(seen, key=lambda r: (-lower[r], r))[:k]

        pairs = sorted(
            ((function(self._dataset.vector(rid)), rid) for rid in answer),
            key=lambda pair: (-pair[0], pair[1]),
        )
        return TopKResult.from_pairs(pairs, stats, algorithm=self.name)

    def _spend_random_access(
        self,
        partial: PartialScores,
        function: ScoringFunction,
        depth_values: np.ndarray,
        stats: AccessCounter,
    ) -> None:
        """Resolve the unresolved seen record with the largest upper bound."""
        best_rid, best_ub = None, -np.inf
        for rid in partial.seen():
            if partial.is_resolved(rid):
                continue
            ub = partial.upper_bound(rid, function, depth_values)
            if ub > best_ub or (ub == best_ub and (best_rid is None or rid < best_rid)):
                best_rid, best_ub = rid, ub
        if best_rid is None:
            return
        stats.count_random()
        vector = self._dataset.vector(best_rid)
        stats.count_computed(best_rid)
        partial.observe_full(best_rid, vector)
