"""Cost-based planner: choose a top-k algorithm from statistics.

A miniature query optimizer over the repository's algorithms.  Costs are
the paper's unit — expected records accessed per query — estimated from
cheap dataset statistics:

- **DG** (Advanced Traveler): Theorem 3.2, ``k + E[|skyline|]``, with the
  skyline cardinality from the harmonic model (or measured exactly when
  the caller already built a graph).
- **TA**: the classic depth heuristic — TA scans until the per-list
  threshold falls below the k-th score; under independent uniform
  marginals that happens around depth ``n * (k / n)^(1/m)``, and TA
  touches ~m records per depth step.
- **Naive scan**: exactly ``n``.

The planner picks the cheapest plan, materializes the algorithm on
demand, and exposes the estimates for EXPLAIN-style introspection — a
deliberately small model (uniform-ish marginals, no correlation term)
whose purpose is choosing between asymptotically different strategies,
not precise prediction; tests validate the *ranking* it induces.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.naive import naive_top_k
from repro.baselines.ta import ThresholdAlgorithm
from repro.core.advanced import AdvancedTraveler
from repro.core.builder import build_extended_graph
from repro.core.dataset import Dataset
from repro.core.functions import ScoringFunction
from repro.core.result import TopKResult
from repro.skyline.cardinality import expected_skyline_uniform


@dataclass(frozen=True)
class PlanEstimate:
    """One candidate plan with its estimated per-query record accesses."""

    algorithm: str
    estimated_accesses: float


def estimate_dg_accesses(n: int, dims: int, k: int) -> float:
    """Theorem 3.2: ``k - 1 + E[|skyline(n, m)|]``."""
    return (k - 1) + expected_skyline_uniform(n, dims)


def estimate_ta_accesses(n: int, dims: int, k: int) -> float:
    """Depth heuristic: TA stops near depth ``n * (k/n)^(1/m)``.

    Rationale: with independent marginals, the threshold at depth d is
    roughly the score of the record ranked ``n * (d/n)^m`` overall (all m
    coordinates must be large simultaneously), so the k-th best score is
    reached when ``(d/n)^m ≈ k/n``.  Each depth step costs one sorted
    access per list and at most one new random access per list.
    """
    depth = n * (k / n) ** (1.0 / dims) if n else 0.0
    return min(float(n), dims * depth)


class Planner:
    """Pick and run the cheapest top-k strategy for a dataset.

    Parameters
    ----------
    dataset:
        The record set queries will run against.
    theta, seed:
        Passed to the DG builder when the DG plan is materialized.

    Examples
    --------
    >>> from repro.data.generators import uniform
    >>> planner = Planner(uniform(500, 3, seed=0))
    >>> planner.choose(k=10).algorithm
    'dg'
    >>> planner.choose(k=500).algorithm
    'naive'
    """

    def __init__(
        self, dataset: Dataset, theta: int | None = None, seed: int = 0
    ) -> None:
        self._dataset = dataset
        self._theta = theta
        self._seed = seed
        self._dg: AdvancedTraveler | None = None
        self._ta: ThresholdAlgorithm | None = None

    def estimates(self, k: int) -> list:
        """All candidate plans, cheapest first."""
        if k <= 0:
            raise ValueError("k must be positive")
        n, dims = len(self._dataset), self._dataset.dims
        k = min(k, n)
        plans = [
            PlanEstimate("dg", estimate_dg_accesses(n, dims, k)),
            PlanEstimate("ta", estimate_ta_accesses(n, dims, k)),
            PlanEstimate("naive", float(n)),
        ]
        return sorted(plans, key=lambda p: (p.estimated_accesses, p.algorithm))

    def choose(self, k: int) -> PlanEstimate:
        """The cheapest plan for a top-k query."""
        return self.estimates(k)[0]

    def explain(self, k: int) -> str:
        """EXPLAIN-style, human-readable plan ranking."""
        lines = [f"top-{k} over n={len(self._dataset)}, m={self._dataset.dims}:"]
        for rank, plan in enumerate(self.estimates(k), start=1):
            marker = "->" if rank == 1 else "  "
            lines.append(
                f" {marker} {plan.algorithm:<6} ~{plan.estimated_accesses:,.0f} "
                "records"
            )
        return "\n".join(lines)

    def top_k(self, function: ScoringFunction, k: int) -> TopKResult:
        """Run the chosen plan (indexes are built lazily and cached)."""
        plan = self.choose(k)
        if plan.algorithm == "dg":
            if self._dg is None:
                self._dg = AdvancedTraveler(
                    build_extended_graph(
                        self._dataset, theta=self._theta, seed=self._seed
                    )
                )
            return self._dg.top_k(function, k)
        if plan.algorithm == "ta":
            if self._ta is None:
                self._ta = ThresholdAlgorithm(self._dataset)
            return self._ta.top_k(function, k)
        return naive_top_k(self._dataset, function, k)
