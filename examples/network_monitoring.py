"""Network monitoring on the Server dataset (the paper's real workload).

The paper's real dataset is KDD Cup 1999 network-connection statistics
(count / srv-count / dest-host-count).  A security analyst wants the top-k
most aggressive connection windows — exactly a top-k preference query —
and the traffic keeps flowing, so the index must absorb inserts online
(Section V).  This example streams fresh connection batches into a live
Extended DG and re-queries between batches, comparing against TA.

Run:  python examples/network_monitoring.py
"""

from repro import AdvancedTraveler, LinearFunction, build_extended_graph
from repro.baselines.ta import ThresholdAlgorithm
from repro.core.maintenance import insert_record
from repro.data.server import server_dataset
from repro.metrics.timing import Timer

INDEXED = 3000      # connections indexed at start of shift
STREAMED = 300      # connections arriving during the shift
BATCH = 100


def main() -> None:
    # The dataset holds the whole shift; only the first INDEXED rows are
    # in the index at start — the rest arrive as the stream.
    traffic = server_dataset(INDEXED + STREAMED, seed=42)
    with Timer() as build_timer:
        graph = build_extended_graph(traffic, theta=16, record_ids=range(INDEXED))
    print(f"Indexed {INDEXED} connection windows in {build_timer.elapsed:.2f}s "
          f"({graph.num_layers} layers)")

    # Heavier weight on raw connection count, per the analyst's playbook.
    suspicion = LinearFunction([0.5, 0.2, 0.3])
    traveler = AdvancedTraveler(graph)

    def report(stage: str) -> None:
        result = traveler.top_k(suspicion, k=5)
        print(f"\n{stage} — top-5 suspicious windows "
              f"(scored {result.stats.computed} records):")
        for rid, score in result:
            count, srv, dest = traffic.vector(rid)
            print(f"  window#{rid}: score={score:.1f} "
                  f"count={count:.0f} srv={srv:.0f} dest-hosts={dest:.0f}")

    report("Start of shift")

    next_rid = INDEXED
    batch_no = 0
    while next_rid < INDEXED + STREAMED:
        batch_no += 1
        with Timer() as timer:
            for _ in range(BATCH):
                insert_record(graph, next_rid)
                next_rid += 1
        print(f"\nBatch {batch_no}: inserted {BATCH} windows in "
              f"{timer.elapsed:.2f}s (index now {len(graph.real_ids())} records)")
        report(f"After batch {batch_no}")

    # Sanity check against TA over the full, final traffic table.
    ta = ThresholdAlgorithm(traffic)
    ta_result = ta.top_k(suspicion, k=5)
    dg_result = traveler.top_k(suspicion, k=5)
    agree = sorted(ta_result.scores) == sorted(dg_result.scores)
    print(f"\nCross-check vs TA on the full table: "
          f"{'scores agree' if agree else 'MISMATCH'} "
          f"(TA scored {ta_result.stats.computed} records, "
          f"DG scored {dg_result.stats.computed})")


if __name__ == "__main__":
    main()
