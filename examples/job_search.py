"""Job search: the paper's motivating scenario (Section I).

"A job seeker may want to find the best jobs fit to her preferences, such
as near to her home, high salary, and short working time.  For different
applicants, they may have their own ranking by assigning different
weights."

One Dominant Graph index serves *every* applicant: the index depends only
on dominance between postings, while each query brings its own aggregate
monotone preference function — including the non-linear ones that ONION,
AppRI and PREFER cannot handle.

Run:  python examples/job_search.py
"""

import numpy as np

from repro import (
    AdvancedTraveler,
    Dataset,
    LinearFunction,
    MinFunction,
    ProductFunction,
    build_extended_graph,
)

RNG = np.random.default_rng(7)
N_JOBS = 4000

# Attributes are normalized to [0, 1], larger = better:
#   salary      — pay percentile
#   proximity   — 1 - normalized commute distance
#   free_time   — 1 - normalized weekly hours
#   reputation  — employer rating percentile
ATTRIBUTES = ("salary", "proximity", "free_time", "reputation")


def make_job_market() -> Dataset:
    salary = RNG.beta(2.0, 3.0, N_JOBS)
    # Better-paying jobs cluster downtown: pay trades off against commute.
    proximity = np.clip(1.0 - salary * 0.6 - RNG.uniform(0, 0.5, N_JOBS), 0, 1)
    free_time = np.clip(RNG.beta(4.0, 2.0, N_JOBS) - salary * 0.2, 0, 1)
    reputation = np.clip(salary * 0.5 + RNG.beta(2, 2, N_JOBS) * 0.5, 0, 1)
    values = np.column_stack([salary, proximity, free_time, reputation])
    labels = [f"job-{i:04d}" for i in range(N_JOBS)]
    return Dataset(values, attribute_names=ATTRIBUTES, labels=labels)


def show(dataset: Dataset, title: str, result) -> None:
    print(f"\n{title}")
    print(f"  (scored {result.stats.computed} of {len(dataset)} postings)")
    for rid, score in result:
        row = dataset.vector(rid)
        detail = ", ".join(f"{a}={v:.2f}" for a, v in zip(ATTRIBUTES, row))
        print(f"  {dataset.label(rid)}  score={score:.3f}  [{detail}]")


def main() -> None:
    market = make_job_market()
    graph = build_extended_graph(market, theta=32, seed=0)
    traveler = AdvancedTraveler(graph)
    print(f"Indexed {len(market)} postings: {graph.num_layers} layers, "
          f"{graph.num_pseudo} pseudo records")

    # Applicant A cares about money above all.
    money_first = LinearFunction([0.7, 0.1, 0.1, 0.1])
    show(market, "Applicant A — money first (0.7/0.1/0.1/0.1):",
         traveler.top_k(money_first, k=5))

    # Applicant B wants work-life balance near home.
    balance = LinearFunction([0.15, 0.4, 0.4, 0.05])
    show(market, "Applicant B — balance & proximity:",
         traveler.top_k(balance, k=5))

    # Applicant C refuses to compromise on any dimension: bottleneck query
    # (non-linear, monotone — supported by DG, not by ONION/PREFER/AppRI).
    show(market, "Applicant C — no weak spots (min over attributes):",
         traveler.top_k(MinFunction(), k=5))

    # Applicant D scores jobs multiplicatively (Cobb-Douglas utility).
    cobb_douglas = ProductFunction([0.4, 0.3, 0.2, 0.1])
    show(market, "Applicant D — Cobb-Douglas utility:",
         traveler.top_k(cobb_douglas, k=5))


if __name__ == "__main__":
    main()
