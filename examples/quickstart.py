"""Quickstart: the paper's running example, end to end.

Builds the Dominant Graph of a small 2-attribute record set, answers the
paper's top-2 query F = 0.6*X + 0.4*Y by graph traversal, and shows the
index structure plus the cost model of Section III.

Run:  python examples/quickstart.py
"""

from repro import (
    AdvancedTraveler,
    BasicTraveler,
    Dataset,
    LinearFunction,
    build_dominant_graph,
    build_extended_graph,
)
from repro.core.cost import search_space

# A record set in the spirit of the paper's Fig. 1 (13 records, 2
# attributes, larger = better).  TIDs are 1-based labels like the paper's.
ROWS = [
    (150.0, 400.0),  # TID 1
    (200.0, 250.0),  # TID 2
    (300.0, 380.0),  # TID 3
    (350.0, 300.0),  # TID 4
    (180.0, 350.0),  # TID 5
    (250.0, 270.0),  # TID 6
    (100.0, 200.0),  # TID 7
    (120.0, 330.0),  # TID 8
    (260.0, 150.0),  # TID 9
    (90.0, 120.0),   # TID 10
    (80.0, 390.0),   # TID 11
    (140.0, 210.0),  # TID 12
    (60.0, 60.0),    # TID 13
]


def main() -> None:
    dataset = Dataset(ROWS, attribute_names=("X", "Y"),
                      labels=[f"TID{i + 1}" for i in range(len(ROWS))])

    # Offline phase: build the DG index (Definition 2.4).
    graph = build_dominant_graph(dataset)
    graph.validate()
    print("Dominant Graph layers (maximal layers, Definition 2.3):")
    for i, layer in enumerate(graph.layers(), start=1):
        members = ", ".join(sorted(str(dataset.label(r)) for r in layer))
        print(f"  L{i}: {members}")

    # Online phase: a top-2 preference query, F = 0.6*X + 0.4*Y.
    function = LinearFunction([0.6, 0.4])
    result = BasicTraveler(graph).top_k(function, k=2)
    print("\nTop-2 under F = 0.6*X + 0.4*Y  (Basic Traveler, Algorithm 1):")
    for rid, score in result:
        x, y = dataset.vector(rid)
        print(f"  {dataset.label(rid)}  score={score:.1f}  (X={x:.0f}, Y={y:.0f})")
    print(f"  records scored: {result.stats.computed} of {len(dataset)}")

    # The Section III cost model: the search space is S2 ∪ S3.
    space = search_space(dataset, function, k=2)
    print(f"  Theorem 3.1 predicted search space |S2 ∪ S3| = {space.cost}")

    # Extended DG with pseudo records (Section IV) answers identically.
    extended = build_extended_graph(dataset, theta=4)
    advanced = AdvancedTraveler(extended).top_k(function, k=2)
    print("\nAdvanced Traveler over the Extended DG returns the same answer:",
          [str(dataset.label(r)) for r in advanced.ids])


if __name__ == "__main__":
    main()
