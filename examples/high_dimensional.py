"""High-dimensional top-k with the N-Way Traveler (paper Section IV-C).

Product catalogues routinely score items on ten or more normalized feature
columns.  With little dominance in 10-d, a single DG collapses toward one
giant layer; the N-Way Traveler splits the dimensions into groups, builds
one DG per group, and drives them TA-style with a global threshold.

This example ranks a 10-attribute product catalogue with 1-way, 2-way and
5-way partitions and with plain TA, comparing the accessed-record counts
(the paper's Fig. 9a setting: two DGs over 5 dimensions each).

Run:  python examples/high_dimensional.py
"""

import numpy as np

from repro import Dataset, LinearFunction, NWayTraveler
from repro.baselines.ta import ThresholdAlgorithm
from repro.metrics.timing import Timer

N_PRODUCTS = 2000
DIMS = 10
FEATURES = (
    "battery", "display", "camera", "storage", "cpu",
    "build", "audio", "thermals", "warranty", "price_value",
)


def make_catalogue() -> Dataset:
    rng = np.random.default_rng(3)
    # Two latent quality factors plus noise: realistic mild correlation.
    factors = rng.uniform(size=(N_PRODUCTS, 2))
    loadings = rng.uniform(0.2, 0.8, size=(2, DIMS))
    noise = rng.uniform(size=(N_PRODUCTS, DIMS)) * 0.6
    values = factors @ loadings + noise
    return Dataset(values / values.max(axis=0), attribute_names=FEATURES)


def main() -> None:
    catalogue = make_catalogue()
    # A reviewer's weighting, heaviest on battery/display/camera.
    weights = np.array([18, 16, 14, 12, 10, 8, 7, 6, 5, 4], dtype=float)
    preference = LinearFunction(weights / weights.sum())
    k = 10

    print(f"Catalogue: {N_PRODUCTS} products x {DIMS} features; top-{k} query\n")
    results = {}
    for ways in (1, 2, 5):
        with Timer() as build:
            traveler = NWayTraveler(
                catalogue, NWayTraveler.even_split(DIMS, ways), theta=16
            )
        with Timer() as query:
            result = traveler.top_k(preference, k)
        results[f"{ways}-way DG"] = result
        layer1 = sum(len(g.layer(0)) for g in traveler.graphs)
        print(f"{ways}-way: build {build.elapsed:6.2f}s, query "
              f"{query.elapsed * 1000:7.1f}ms, accessed {result.stats.computed:5d} "
              f"records (first layers hold {layer1})")

    ta = ThresholdAlgorithm(catalogue)
    with Timer() as query:
        ta_result = ta.top_k(preference, k)
    results["TA"] = ta_result
    print(f"TA   :               query {query.elapsed * 1000:7.1f}ms, "
          f"accessed {ta_result.stats.computed:5d} records")

    signatures = {name: r.score_multiset() for name, r in results.items()}
    reference = next(iter(signatures.values()))
    agree = all(np.allclose(sig, reference) for sig in signatures.values())
    print(f"\nAll methods agree on the top-{k}: {agree}")
    print("\nBest products:")
    for rid, score in results["2-way DG"]:
        print(f"  product#{rid:4d} score={score:.4f}")


if __name__ == "__main__":
    main()
