"""Durable serving walkthrough: WAL, snapshots, kill -9, recovery.

A ticketing marketplace serves "best seats under my preferences" queries
while inventory churns.  This walkthrough runs the whole serving story
(see docs/serving.md) against a real on-disk serving directory:

1. initialize a serving directory (checkpoint + CURRENT + WAL);
2. serve epoch-tagged queries while applying durable maintenance;
3. watch a reader pinned to an old snapshot answer consistently while
   a batch lands around it;
4. checkpoint (truncating the WAL atomically);
5. simulate kill -9 — copy the directory with the WAL torn mid-record —
   and recover, comparing answers bit-for-bit against a from-scratch
   rebuild of the surviving operations.

Run:  python examples/serving_walkthrough.py
"""

import os
import shutil
import tempfile
import warnings

import numpy as np

from repro import Dataset, LinearFunction, build_dominant_graph
from repro.core.compiled import CompiledAdvancedTraveler
from repro.serve import ServingIndex, scan_wal, wal_record_offsets

SEATS = 400
ATTRS = ("view", "legroom", "value")
PREFER = LinearFunction([0.5, 0.2, 0.3])


def survivors(index: ServingIndex) -> list:
    compiled = index.snapshot().compiled
    return sorted(
        int(r) for r in compiled.record_ids[~compiled.pseudo_mask].tolist()
    )


def main() -> None:
    rng = np.random.default_rng(7)
    seats = Dataset(rng.uniform(0, 100, (SEATS, len(ATTRS))), attribute_names=ATTRS)
    root = tempfile.mkdtemp(prefix="dg-serving-")
    live_dir = os.path.join(root, "live")

    # -- 1. initialize -------------------------------------------------
    onsale = build_dominant_graph(seats, record_ids=range(300))
    index = ServingIndex.create(live_dir, onsale, fsync="always")
    print(f"serving {len(survivors(index))} seats from {live_dir}")
    print(f"  epoch={index.epoch}  health={index.health()['status']}")

    # -- 2. durable maintenance under queries --------------------------
    best = index.query(PREFER, k=3)
    print(f"\ntop-3 before churn (epoch {best.epoch}):")
    for rid, score in best:
        print(f"  seat {rid}: score {score:.2f}")

    index.insert_many(list(range(300, 320)))   # a new block goes on sale
    index.delete(best.ids[0])                  # the best seat sells
    index.mark_deleted(best.ids[1])            # a hold: cheap mark-delete
    after = index.query(PREFER, k=3)
    print(f"\ntop-3 after churn (epoch {after.epoch}): {list(after.ids)}")
    wal = scan_wal(os.path.join(live_dir, "wal.log"))
    print(f"WAL now holds {len(wal.records)} acknowledged operations")

    # -- 3. snapshot isolation ----------------------------------------
    pinned = index.snapshot()                  # what a reader pins
    index.insert_many(list(range(320, 340)))   # a batch lands "around" it
    old = CompiledAdvancedTraveler(pinned.compiled).top_k(PREFER, 3)
    new = index.query(PREFER, k=3)
    print(
        f"\npinned epoch {pinned.epoch} still answers {list(old.ids)}; "
        f"epoch {new.epoch} answers {list(new.ids)} — no mixed state"
    )

    # -- 4. checkpoint -------------------------------------------------
    name = index.checkpoint()
    wal = scan_wal(os.path.join(live_dir, "wal.log"))
    print(f"\ncheckpointed to {name}; WAL truncated (base_seq={wal.base_seq})")

    # -- 5. kill -9 and recover ---------------------------------------
    index.insert(340)
    index.insert(341)
    index.delete(5)
    # No close(): the process "dies" here.  Copy the directory with the
    # final WAL record torn mid-frame, as an interrupted write leaves it.
    crash_dir = os.path.join(root, "crashed")
    shutil.copytree(live_dir, crash_dir)
    wal_path = os.path.join(crash_dir, "wal.log")
    offsets = wal_record_offsets(wal_path)
    with open(wal_path, "rb+") as handle:
        handle.truncate(offsets[-1] - 3)       # tear the last append
    print(f"\nsimulated crash: WAL torn 3 bytes short of record {len(offsets) - 1}")

    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        recovered = ServingIndex.open(crash_dir)
    for warning in caught:
        print(f"  recovery: {warning.message}")

    alive = survivors(recovered)
    rebuilt = CompiledAdvancedTraveler(
        build_dominant_graph(seats, record_ids=alive).compile()
    )
    want, got = rebuilt.top_k(PREFER, 10), recovered.query(PREFER, k=10)
    assert got.ids == want.ids and got.scores == want.scores
    print(
        f"recovered {len(alive)} seats; top-10 bit-identical to a "
        "from-scratch rebuild"
    )
    print(f"  (the torn op 'delete(5)' was never acknowledged: "
          f"seat 5 {'survives' if 5 in alive else 'is gone'})")

    recovered.close()
    index.close(checkpoint=False)
    shutil.rmtree(root)
    print("\nclean shutdown — walkthrough complete")


if __name__ == "__main__":
    main()
