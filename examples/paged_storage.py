"""Paged storage: measuring the DG's disk behaviour.

The paper derives its pseudo-record threshold from page geometry
(θ = page bytes / record bytes) — an implicitly disk-resident design.
This example makes that concrete: records live on fixed-size pages behind
a small LRU buffer pool, and the same top-k query is run under three page
layouts.  Storing DG layers contiguously — the layout the index itself
suggests — turns the Traveler's layer-ordered accesses into page hits.

Run:  python examples/paged_storage.py
"""

import numpy as np

from repro import AdvancedTraveler, LinearFunction, build_extended_graph
from repro.data.generators import uniform
from repro.storage import (
    PagedDataset,
    layer_clustered_layout,
    records_per_page,
    row_order_layout,
)

N_RECORDS = 3000
DIMS = 3
POOL_PAGES = 4
K = 25


def main() -> None:
    base = uniform(N_RECORDS, DIMS, seed=21)
    per_page = records_per_page(DIMS)
    print(f"{N_RECORDS} records, {per_page} per {4096}-byte page, "
          f"{POOL_PAGES}-page LRU buffer pool\n")

    # Build once on the in-memory dataset to derive the layer layout.
    reference = build_extended_graph(base, theta=16)
    preference = LinearFunction([0.5, 0.3, 0.2])

    rng = np.random.default_rng(21)
    shuffled = list(range(N_RECORDS))
    rng.shuffle(shuffled)
    layouts = {
        "layer-clustered (DG order)": layer_clustered_layout(reference, per_page),
        "row-order (heap file)": row_order_layout(range(N_RECORDS), per_page),
        "random placement": {r: i // per_page for i, r in enumerate(shuffled)},
    }

    print(f"top-{K} query under each layout:")
    for name, layout in layouts.items():
        paged = PagedDataset(base, layout=layout, pool_pages=POOL_PAGES)
        graph = build_extended_graph(paged, theta=16)
        paged.reset_io()
        result = AdvancedTraveler(graph).top_k(preference, K)
        stats = paged.io_stats
        print(f"  {name:28s} {stats.io_count:4d} page I/Os "
              f"({stats.hits} hits / {stats.misses} misses; "
              f"{result.stats.computed} records scored)")

    print("\nThe record-access count is identical in all three runs — the "
          "index decides\nwhat to read; the layout decides what that costs.")


if __name__ == "__main__":
    main()
