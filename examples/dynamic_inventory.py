"""Dynamic inventory: online index maintenance (paper Section V).

A marketplace ranks live listings by seller preference queries while
listings appear and disappear constantly.  Layer-based indexes like ONION
must re-peel convex hulls on every change; the DG absorbs each change
locally.  This example runs a day of churn — interleaved inserts and
deletes — against a live DG, validating the structure against a
from-scratch rebuild at every checkpoint, and shows both deletion flavours
(structural deletion vs. the paper's cheap mark-as-pseudo).

Run:  python examples/dynamic_inventory.py
"""

import random

import numpy as np

from repro import (
    AdvancedTraveler,
    Dataset,
    LinearFunction,
    build_dominant_graph,
    delete_record,
    insert_record,
    mark_deleted,
)
from repro.metrics.timing import Timer

START = 1500        # listings live at open
CHURN_EVENTS = 600  # interleaved inserts/deletes during the day
ATTRS = ("margin", "rating", "freshness")


def main() -> None:
    rng = np.random.default_rng(11)
    random.seed(11)
    # Pre-generate every listing that will ever exist today.
    pool = rng.uniform(0.0, 100.0, size=(START + CHURN_EVENTS, len(ATTRS)))
    listings = Dataset(pool, attribute_names=ATTRS)

    graph = build_dominant_graph(listings, record_ids=range(START))
    traveler = AdvancedTraveler(graph)
    preference = LinearFunction([0.5, 0.3, 0.2])

    live = set(range(START))
    next_new = START
    insert_time = delete_time = 0.0
    inserts = deletes = 0

    for event in range(CHURN_EVENTS):
        if next_new < len(listings) and (event % 2 == 0 or len(live) < 10):
            with Timer() as timer:
                insert_record(graph, next_new)
            insert_time += timer.elapsed
            live.add(next_new)
            next_new += 1
            inserts += 1
        else:
            victim = random.choice(sorted(live))
            with Timer() as timer:
                delete_record(graph, victim)
            delete_time += timer.elapsed
            live.remove(victim)
            deletes += 1

        if (event + 1) % 150 == 0:
            graph.validate()
            rebuilt = build_dominant_graph(listings, record_ids=sorted(live))
            assert graph.layers() == rebuilt.layers(), "drifted from rebuild!"
            top = traveler.top_k(preference, k=3)
            print(f"after {event + 1:3d} events: {len(live)} live listings, "
                  f"{graph.num_layers} layers, top-3 scores "
                  f"{[f'{s:.1f}' for s in top.scores]} (validated vs rebuild)")

    print(f"\n{inserts} inserts in {insert_time:.2f}s "
          f"({1000 * insert_time / max(inserts, 1):.1f} ms each)")
    print(f"{deletes} deletes in {delete_time:.2f}s "
          f"({1000 * delete_time / max(deletes, 1):.1f} ms each)")

    # The paper's cheap deletion: mark as pseudo; the Advanced Traveler
    # keeps traversing the record but never reports it.
    top_before = traveler.top_k(preference, k=1)
    best = top_before.ids[0]
    mark_deleted(graph, best)
    top_after = traveler.top_k(preference, k=1)
    print(f"\nmark_deleted(listing#{best}): next best is listing#{top_after.ids[0]} "
          f"(score {top_before.scores[0]:.1f} -> {top_after.scores[0]:.1f})")


if __name__ == "__main__":
    main()
